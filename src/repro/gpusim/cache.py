"""Sectored, set-associative, LRU cache model with a batch/analytic engine.

This single class produces every memory-hierarchy effect the paper's
microbenchmarks (Section IV) probe for:

* **capacity cliffs** — a cyclic pointer-chase over an array larger than
  the cache thrashes the over-subscribed sets under LRU, so misses appear
  exactly past the capacity boundary (Fig. 1);
* **fetch granularity** — a cache line is divided into *sectors*; a miss
  fetches only the accessed sector (per-sector valid bits), so strides
  below the sector size produce intra-sector hits (Section IV-D);
* **cache line size** — strides above the line size skip whole lines,
  making the cache appear larger (Section IV-E);
* **cooperative eviction** — two actors filling the same physical cache
  evict each other; actors on distinct segments do not (Sections IV-F/G/H).

Performance design (the discovery pipeline runs tens of thousands of
p-chase passes, some over 50 MB L2 footprints):

* state is a pair of ``(num_sets, ways)`` NumPy matrices (tags and
  per-line sector masks), each row ordered LRU -> MRU with empty slots
  (``-1``) packed at the LRU side;
* :meth:`flush` is O(1): rows carry a generation stamp and are lazily
  reset on first touch after a flush;
* :meth:`warm_cyclic` installs the *end state* of a full cyclic pass
  analytically — for uniform strided rings the grouping is a pure
  counting pass (no ``argsort``), merges onto a non-empty cache are a
  handful of vectorised row operations;
* :meth:`chase_cyclic` computes the hit/miss vector of the *timed* pass
  of a p-chase analytically from per-set occupancy (line counts vs.
  associativity, per-sector valid masks) — zero per-load Python — and
  applies the exact end state for the sampled prefix;
* :meth:`pass_monotone` is the batch equivalent of a monotone
  ``access`` sequence on *arbitrary* cache state: sets whose touched
  lines are uniformly resident or uniformly absent are handled
  vectorised, mixed sets fall back to the exact per-access loop;
* :meth:`probe_many` is a vectorised, non-mutating bulk :meth:`probe`.

Every analytic path is access-for-access equivalent to the exact
:meth:`access` loop (asserted by property tests in
``tests/test_cache_chase.py`` and ``tests/test_cache_warm.py``);
sequences the analysis cannot cover fall back to exact simulation
automatically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimCache"]

#: Cumcount index cache for uniform-stride rings with stride >= line_size
#: (cache-line benchmarks probe the same (base, stride) ring at many
#: lengths; the per-set insertion rank is prefix-stable, so one stable
#: sort serves every probe).  Keyed by (num_sets, line_size, base, stride).
_RANK_CACHE: dict[tuple[int, int, int, int], dict] = {}
#: Total cached rank elements across entries (~32 MB of int64); oldest
#: entries are evicted beyond this so the cache cannot grow with the
#: number of devices or strides probed in one process.
_RANK_CACHE_MAX_ELEMS = 4_000_000


def _group_rank(
    keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable grouping of ``keys``: per-element cumcount and group size.

    Returns ``(order, group_starts, group_sizes, rank, size)`` where
    ``order`` stable-sorts the keys, ``group_starts``/``group_sizes``
    describe the sorted groups, and ``rank``/``size`` give each element
    (in original order) its appearance index within its group and the
    group's total count.
    """
    n = keys.size
    order = np.argsort(keys, kind="stable")
    ss = keys[order]
    gchange = np.empty(n, dtype=bool)
    gchange[0] = True
    np.not_equal(ss[1:], ss[:-1], out=gchange[1:])
    gstarts = np.flatnonzero(gchange)
    gsizes = np.diff(np.append(gstarts, n))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n) - np.repeat(gstarts, gsizes)
    size = np.empty(n, dtype=np.int64)
    size[order] = np.repeat(gsizes, gsizes)
    return order, gstarts, gsizes, rank, size


class SimCache:
    """One physical cache instance.

    Parameters mirror :class:`~repro.gpuspec.spec.CacheSpec`: total
    ``size`` bytes organised as ``ways``-associative sets of ``line_size``
    lines, each line split into ``line_size // fetch_granularity`` sectors.
    """

    __slots__ = (
        "name",
        "size",
        "line_size",
        "fetch_granularity",
        "ways",
        "num_sets",
        "sectors_per_line",
        "_tags",
        "_masks",
        "_gen",
        "_set_gen",
        "_valid_sets",
        "_line_max",
        "_line_max_gen",
        "_virtual",
        "hits",
        "sector_misses",
        "line_misses",
        "evictions",
    )

    def __init__(
        self,
        size: int,
        line_size: int,
        fetch_granularity: int,
        ways: int,
        name: str = "cache",
    ) -> None:
        if size <= 0 or line_size <= 0 or ways <= 0:
            raise ValueError("size, line_size and ways must be positive")
        if line_size % fetch_granularity:
            raise ValueError("fetch_granularity must divide line_size")
        if size % (line_size * ways):
            raise ValueError("size must be a multiple of line_size * ways")
        self.name = name
        self.size = size
        self.line_size = line_size
        self.fetch_granularity = fetch_granularity
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        self.sectors_per_line = line_size // fetch_granularity
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._masks = np.zeros((self.num_sets, ways), dtype=np.int64)
        # Generation stamps make flush O(1): a row is only meaningful when
        # its stamp matches the current generation.
        self._gen = 1
        self._set_gen = np.zeros(self.num_sets, dtype=np.int64)
        self._valid_sets = 0
        # Largest line tag installed in the current generation: lets a
        # merge prove "no incoming line can match resident content"
        # (suffix-extension warms share at most the boundary line) in O(1).
        self._line_max = -1
        self._line_max_gen = 0
        # Deferred warm state: (starts_from_flush, [(base, nbytes, stride)]).
        # While set, the logical state is the current rows (after a flush,
        # when the flag is set) warmed with the listed rings in order, but
        # no rows are materialised; any operation that reads or mutates
        # rows materialises first (see warm_fixed_point / warm_cyclic_lazy).
        # Cooperative protocols warm caches they never probe — those warms
        # are discarded for free by the next flush.
        self._virtual: tuple[bool, list[tuple[int, int, int]]] | None = None
        self.hits = 0
        self.sector_misses = 0
        self.line_misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # internal helpers                                                    #
    # ------------------------------------------------------------------ #

    def _ensure_row(self, set_id: int) -> None:
        """Lazily reset a row whose generation stamp is stale."""
        if self._set_gen[set_id] != self._gen:
            self._tags[set_id] = -1
            self._masks[set_id] = 0
            self._set_gen[set_id] = self._gen
            self._valid_sets += 1

    def warm_fixed_point(self, base: int, nbytes: int, stride: int) -> None:
        """Deferred flush + :meth:`warm_cyclic` of a uniform strided ring.

        O(1): the logical state becomes the warm LRU fixed point of the
        ring, but rows are only materialised when an operation actually
        reads or mutates them.  :meth:`chase_cyclic` answers analytic
        timed passes against the descriptor directly, so a fresh p-chase
        sweep never touches per-set state at all.
        """
        self._virtual = (True, [(int(base), int(nbytes), int(stride))])

    def warm_cyclic_lazy(self, base: int, nbytes: int, stride: int) -> None:
        """Deferred :meth:`warm_cyclic` of a uniform strided ring — O(1).

        Appends the ring to the pending warm list; the rows are only
        installed if something later reads them.  A flush discards the
        pending warms for free — exactly what the cooperative protocols
        do to the caches they warm but never probe.
        """
        if self._virtual is not None:
            flag, rings = self._virtual
            if len(rings) < 8:
                rings.append((int(base), int(nbytes), int(stride)))
                return
            self._materialize()
        if self._valid_sets == 0:
            self._virtual = (True, [(int(base), int(nbytes), int(stride))])
        else:
            self._virtual = (False, [(int(base), int(nbytes), int(stride))])

    def _fixed_point_ring(self) -> tuple[int, int, int] | None:
        """The deferred ring when the state is exactly its fixed point."""
        v = self._virtual
        if v is not None and v[0] and len(v[1]) == 1:
            return v[1][0]
        return None

    def extend_fixed_point(self, base: int, nbytes: int, stride: int) -> bool:
        """Extend a deferred warm ring in place (incremental sweeps).

        Valid only when the cache currently holds the fixed point of a
        ring with the same base and stride and no larger size — warming
        the appended suffix of a monotone ring reproduces the fixed point
        of the extended ring exactly (property-tested).  Returns False
        when the current state offers no such proof.
        """
        ring = self._fixed_point_ring()
        if ring is not None and ring[0] == base and ring[2] == stride and ring[1] <= nbytes:
            self._virtual = (True, [(int(base), int(nbytes), int(stride))])
            return True
        return False

    def truncate_fixed_point(self, base: int, nbytes: int, stride: int) -> bool:
        """Shrink a deferred warm ring in place (binary-descent probes).

        Valid only when the cache currently holds the *deferred* fixed
        point of a ring with the same base and stride and at least this
        size.  The logical state then becomes flush + warm of the
        truncated prefix ring — exactly what a fresh probe would install
        — without touching any rows: the descriptor swap alone is the
        whole operation, so a shrinking probe against a warmed superset
        costs O(1) instead of flush + O(size) re-warm (property-tested).
        Returns False when the current state offers no such proof (e.g.
        something materialised the rows in between).
        """
        ring = self._fixed_point_ring()
        if ring is not None and ring[0] == base and ring[2] == stride and ring[1] >= nbytes:
            self._virtual = (True, [(int(base), int(nbytes), int(stride))])
            return True
        return False

    def _materialize(self) -> None:
        """Install the rows of the deferred warm list."""
        v = self._virtual
        if v is None:
            return
        self._virtual = None
        flush_first, rings = v
        if flush_first:
            self.flush()
        for base, nbytes, stride in rings:
            addrs = base + np.arange(nbytes // stride, dtype=np.int64) * stride
            self.warm_cyclic(addrs, stride=stride)

    def _note_lines(self, line_max: int) -> None:
        """Track the largest line tag installed this generation."""
        if self._line_max_gen != self._gen:
            self._line_max = int(line_max)
            self._line_max_gen = self._gen
        elif line_max > self._line_max:
            self._line_max = int(line_max)

    def _current_line_max(self) -> int:
        return self._line_max if self._line_max_gen == self._gen else -1

    # ------------------------------------------------------------------ #
    # exact per-access simulation                                         #
    # ------------------------------------------------------------------ #

    def access(self, addr: int) -> bool:
        """Perform one load; returns True on a (sector) hit.

        A tag match with an invalid sector is a *sector miss*: the sector
        is fetched (granularity = ``fetch_granularity``) and the access
        reports a miss, but no line is evicted.
        """
        if self._virtual is not None:
            self._materialize()
        line = addr // self.line_size
        sector_bit = 1 << ((addr % self.line_size) // self.fetch_granularity)
        set_id = line % self.num_sets
        self._ensure_row(set_id)
        tags = self._tags[set_id]
        masks = self._masks[set_id]
        ways = self.ways
        hit_way = -1
        for w in range(ways - 1, -1, -1):
            if tags[w] == line:
                hit_way = w
                break
        if hit_way >= 0:
            mask = int(masks[hit_way])
            hit = bool(mask & sector_bit)
            new_mask = mask | sector_bit
            # Promote to MRU (shift the tail left by one).
            if hit_way != ways - 1:
                tags[hit_way:-1] = tags[hit_way + 1 :]
                masks[hit_way:-1] = masks[hit_way + 1 :]
                tags[ways - 1] = line
            masks[ways - 1] = new_mask
            if hit:
                self.hits += 1
                return True
            self.sector_misses += 1
            return False
        # Line miss: evict the LRU slot (slot 0; empties pack there).
        if tags[0] != -1:
            self.evictions += 1
        tags[:-1] = tags[1:]
        masks[:-1] = masks[1:]
        tags[ways - 1] = line
        masks[ways - 1] = sector_bit
        self.line_misses += 1
        self._note_lines(line)
        return False

    def access_many(self, addrs: np.ndarray) -> np.ndarray:
        """Exact simulation of an address sequence; returns hit booleans."""
        access = self.access
        return np.fromiter(
            (access(int(a)) for a in addrs), dtype=bool, count=len(addrs)
        )

    def probe(self, addr: int) -> bool:
        """Non-mutating hit test (no LRU update, no fill)."""
        if self._virtual is not None:
            self._materialize()
        line = addr // self.line_size
        set_id = line % self.num_sets
        if self._set_gen[set_id] != self._gen:
            return False
        sector_bit = 1 << ((addr % self.line_size) // self.fetch_granularity)
        tags = self._tags[set_id]
        for w in range(self.ways - 1, -1, -1):
            if tags[w] == line:
                return bool(int(self._masks[set_id, w]) & sector_bit)
        return False

    def probe_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised, non-mutating bulk :meth:`probe`."""
        if self._virtual is not None:
            self._materialize()
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return np.zeros(0, dtype=bool)
        lines = addrs // self.line_size
        bits = np.int64(1) << (
            (addrs % self.line_size) // self.fetch_granularity
        ).astype(np.int64)
        sets = lines % self.num_sets
        fresh = self._set_gen[sets] == self._gen
        eq = (self._tags[sets] == lines[:, None]) & fresh[:, None]
        found = eq.any(axis=1)
        way = eq.argmax(axis=1)
        masks = self._masks[sets, way]
        return found & ((masks & bits) != 0)

    # ------------------------------------------------------------------ #
    # ring analysis (shared by warm / chase)                              #
    # ------------------------------------------------------------------ #

    def _addr_parts(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(line index, sector bit) per address."""
        lines = addrs // self.line_size
        bits = np.int64(1) << (
            (addrs % self.line_size) // self.fetch_granularity
        ).astype(np.int64)
        return lines, bits

    def _ring_structure(
        self, addrs: np.ndarray, stride: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-line structure of a monotone address sequence.

        Returns ``(uniq_lines, line_masks, set_ids, from_end, touched)``:
        one entry per distinct line in first-touch order, with
        ``from_end`` the 0-indexed distance from the end of the line's
        per-set group (0 == most recently touched line of its set) and
        ``touched`` the sorted unique set ids.

        ``stride`` is a caller-supplied uniform-stride hint: it certifies
        monotonicity and, for ``stride <= line_size``, makes the grouping
        a pure counting pass (consecutive lines — no ``argsort``).
        """
        ws = self.ways
        sets_total = self.num_sets
        line = self.line_size
        fg = self.fetch_granularity
        a0 = int(addrs[0])
        if stride is not None and 0 < stride <= line:
            # Uniform stride at or below the line size: every line between
            # the first and last address is touched, in consecutive order.
            l0 = a0 // line
            l_last = int(addrs[-1]) // line
            m = l_last - l0 + 1
            uniq_lines = l0 + np.arange(m, dtype=np.int64)
            if stride <= fg:
                # Every sector between the first and last address is hit.
                full = (np.int64(1) << self.sectors_per_line) - 1
                line_masks = np.full(m, full, dtype=np.int64)
                first_sector = (a0 % line) // fg
                line_masks[0] &= full & ~((np.int64(1) << first_sector) - 1)
                last_sector = (int(addrs[-1]) % line) // fg
                line_masks[-1] &= (np.int64(1) << (last_sector + 1)) - 1
            else:
                # Sector pattern varies per line: OR-reduce per line run.
                starts = np.maximum(
                    np.int64(0), -((a0 - uniq_lines * line) // stride)
                )
                _, bits = self._addr_parts(addrs)
                line_masks = np.bitwise_or.reduceat(bits, starts)
            set_ids = uniq_lines % sets_total
            # Consecutive lines cycle through the sets with period
            # ``num_sets``: group rank and size come from pure arithmetic.
            rank = np.arange(m, dtype=np.int64) // sets_total
            counts = m // sets_total + (
                np.arange(m, dtype=np.int64) % sets_total < m % sets_total
            )
            from_end = counts - 1 - rank
            if m >= sets_total:
                touched = np.arange(sets_total, dtype=np.int64)
            else:
                touched = np.sort(set_ids)
            return uniq_lines, line_masks, set_ids, from_end, touched
        if stride is not None and stride >= line:
            # Uniform stride at or above the line size: every address is
            # its own line (and single sector); the per-set insertion
            # rank comes from the prefix-stable rank cache.
            lines, bits = self._addr_parts(addrs)
            set_ids = lines % sets_total
            counts_prefix = np.bincount(set_ids, minlength=sets_total)
            rank = self._stride_rank(addrs, stride)
            from_end = counts_prefix[set_ids] - 1 - rank
            touched = np.flatnonzero(counts_prefix)
            return lines, bits, set_ids, from_end, touched
        # Generic monotone sequence: run-length pass plus a stable sort
        # over the (much smaller) per-line arrays.
        lines, bits = self._addr_parts(addrs)
        change = np.empty(lines.size, dtype=bool)
        change[0] = True
        np.not_equal(lines[1:], lines[:-1], out=change[1:])
        run_starts = np.flatnonzero(change)
        uniq_lines = lines[run_starts]
        line_masks = np.bitwise_or.reduceat(bits, run_starts)
        set_ids = uniq_lines % sets_total
        order, gstarts, _, rank, size = _group_rank(set_ids)
        from_end = size - 1 - rank
        touched = set_ids[order][gstarts]
        _ = ws  # (associativity is applied by the install helpers)
        return uniq_lines, line_masks, set_ids, from_end, touched

    def _stride_rank(self, addrs: np.ndarray, stride: int) -> np.ndarray:
        """Per-address insertion rank within its set (stride >= line_size).

        Rank is prefix-stable — element ``i`` only depends on elements
        before it — so the cached index of the longest ring seen for this
        (base, stride) serves every shorter probe, and extensions only
        sort the appended suffix.
        """
        key = (self.num_sets, self.line_size, int(addrs[0]), int(stride))
        n = int(addrs.size)
        ent = _RANK_CACHE.get(key)
        if ent is None or ent["n"] < n:
            if ent is None:
                prior_n = 0
                prior_counts = np.zeros(self.num_sets, dtype=np.int64)
                prior_rank = np.empty(0, dtype=np.int64)
            else:
                prior_n = ent["n"]
                prior_counts = ent["counts"]
                prior_rank = ent["rank"]
            new_sets = (addrs[prior_n:] // self.line_size) % self.num_sets
            _, _, _, within, _ = _group_rank(new_sets)
            rank = np.concatenate([prior_rank, prior_counts[new_sets] + within])
            counts = prior_counts + np.bincount(new_sets, minlength=self.num_sets)
            _RANK_CACHE.pop(key, None)
            total = sum(e["rank"].size for e in _RANK_CACHE.values())
            while _RANK_CACHE and total + rank.size > _RANK_CACHE_MAX_ELEMS:
                total -= _RANK_CACHE.pop(next(iter(_RANK_CACHE)))["rank"].size
            if rank.size <= _RANK_CACHE_MAX_ELEMS:
                _RANK_CACHE[key] = {"n": n, "rank": rank, "counts": counts}
            return rank[:n]
        return ent["rank"][:n]

    def _ring_set_counts(
        self, addrs: np.ndarray, stride: int | None, query_lines: np.ndarray
    ) -> np.ndarray:
        """Ring-wide per-set line counts, looked up for ``query_lines``.

        For uniform strides at or below the line size the counts follow
        from arithmetic (O(len(query_lines))); otherwise one O(len(ring))
        counting pass is made.
        """
        line = self.line_size
        sets_total = self.num_sets
        if stride is not None and 0 < stride <= line:
            l0 = int(addrs[0]) // line
            m = int(addrs[-1]) // line - l0 + 1
            offs = (query_lines - l0) % sets_total
            return m // sets_total + (offs < m % sets_total)
        lines = addrs // line
        if stride is not None and stride >= line:
            # Every address is a distinct line — no run detection needed.
            uniq = lines
        else:
            change = np.empty(lines.size, dtype=bool)
            change[0] = True
            np.not_equal(lines[1:], lines[:-1], out=change[1:])
            uniq = lines[np.flatnonzero(change)]
        counts_per_set = np.bincount(uniq % sets_total, minlength=sets_total)
        return counts_per_set[query_lines % sets_total]

    # ------------------------------------------------------------------ #
    # vectorised row transforms                                           #
    # ------------------------------------------------------------------ #

    def _fresh_install(
        self,
        uniq_lines: np.ndarray,
        line_masks: np.ndarray,
        set_ids: np.ndarray,
        from_end: np.ndarray,
        touched: np.ndarray,
    ) -> None:
        """End-state install onto a flushed cache (``_valid_sets == 0``).

        Within each set the last ``min(ways, k)`` lines survive, packed
        toward the MRU end.
        """
        ws = self.ways
        keep = from_end < ws
        kept_sets = set_ids[keep]
        kept_ways = ws - 1 - from_end[keep]
        self._tags[touched] = -1
        self._masks[touched] = 0
        self._set_gen[touched] = self._gen
        self._valid_sets += int(touched.size)
        self._tags[kept_sets, kept_ways] = uniq_lines[keep]
        self._masks[kept_sets, kept_ways] = line_masks[keep]
        self._note_lines(int(uniq_lines[-1]))

    def _incoming_rows(
        self,
        uniq_lines: np.ndarray,
        line_masks: np.ndarray,
        set_ids: np.ndarray,
        from_end: np.ndarray,
        touched: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense (len(touched), ways) rows of the surviving incoming lines."""
        ws = self.ways
        keep = from_end < ws
        row_idx = np.searchsorted(touched, set_ids[keep])
        kept_ways = ws - 1 - from_end[keep]
        inc_tags = np.full((touched.size, ws), -1, dtype=np.int64)
        inc_masks = np.zeros((touched.size, ws), dtype=np.int64)
        inc_tags[row_idx, kept_ways] = uniq_lines[keep]
        inc_masks[row_idx, kept_ways] = line_masks[keep]
        return inc_tags, inc_masks

    def _gather_rows(self, touched: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copy of the rows for ``touched`` sets with stale rows blanked."""
        old_tags = self._tags[touched].copy()
        old_masks = self._masks[touched].copy()
        stale = self._set_gen[touched] != self._gen
        if stale.any():
            old_tags[stale] = -1
            old_masks[stale] = 0
        return old_tags, old_masks, stale

    def _replay_merge(self, lines: np.ndarray, line_masks: np.ndarray, set_ids: np.ndarray) -> None:
        """Exact per-set replay of a warm pass (one event per line run).

        Used for the few sets where an incoming line may re-access a
        resident one: a hit promotes and unions sector masks, a miss
        evicts LRU — whether a given line hits depends on the evictions
        this very pass performed earlier in the set, which the replay
        reproduces literally.
        """
        ways = self.ways
        buckets: dict[int, list[tuple[int, int]]] = {}
        for i in range(lines.size):
            buckets.setdefault(int(set_ids[i]), []).append(
                (int(lines[i]), int(line_masks[i]))
            )
        for set_id, events in buckets.items():
            self._ensure_row(set_id)
            row_t = self._tags[set_id]
            row_m = self._masks[set_id]
            row = [
                (int(row_t[w]), int(row_m[w])) for w in range(ways) if row_t[w] != -1
            ]
            for line, mask in events:
                for idx, (tag, old_mask) in enumerate(row):
                    if tag == line:
                        row.pop(idx)
                        row.append((line, old_mask | mask))
                        break
                else:
                    if len(row) == ways:
                        row.pop(0)
                    row.append((line, mask))
            row_t[:] = -1
            row_m[:] = 0
            pad = ways - len(row)
            for w, (tag, mask) in enumerate(row):
                row_t[pad + w] = tag
                row_m[pad + w] = mask
            self._note_lines(max(line for line, _ in events))

    def _merge_rows(
        self,
        touched: np.ndarray,
        inc_tags: np.ndarray,
        inc_masks: np.ndarray,
        inserted_counts: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Pure-insert incoming lines into the rows of ``touched`` sets.

        The end state per set is the last ``ways`` entries of
        ``[old entries..., incoming...]`` (LRU evicts first).  Callers
        guarantee no incoming line is resident (lines above the
        generation's tag bound, or thrash semantics where any old copy is
        provably evicted before its truncation slot).

        Returns per-set eviction counts when ``inserted_counts`` (the
        *uncapped* number of inserts per set) is given, else ``None``.
        """
        ws = self.ways
        if touched.size <= 4 and inserted_counts is None:
            self._merge_rows_small(touched, inc_tags, inc_masks)
            return None
        valid_inc = inc_tags != -1
        if inserted_counts is None and bool(valid_inc.all()):
            # Every touched set receives a full complement of lines none
            # of which can be resident: a plain overwrite scatter.
            stale = self._set_gen[touched] != self._gen
            self._tags[touched] = inc_tags
            self._masks[touched] = inc_masks
            self._set_gen[touched] = self._gen
            self._valid_sets += int(stale.sum())
            self._note_lines(int(inc_tags.max()))
            return None
        old_tags, old_masks, stale = self._gather_rows(touched)
        surv = old_tags != -1
        evictions = None
        if inserted_counts is not None:
            free = ws - surv.sum(axis=1)
            evictions = np.maximum(0, inserted_counts - free)
        # A set receiving a full complement of incoming lines keeps none of
        # its old entries — a plain scatter, no survivor shuffle needed.
        full = valid_inc.all(axis=1)
        if full.all():
            self._tags[touched] = inc_tags
            self._masks[touched] = inc_masks
        else:
            self._tags[touched[full]] = inc_tags[full]
            self._masks[touched[full]] = inc_masks[full]
            part = ~full
            cat_tags = np.concatenate(
                [np.where(surv[part], old_tags[part], np.int64(-1)), inc_tags[part]],
                axis=1,
            )
            cat_masks = np.concatenate(
                [np.where(surv[part], old_masks[part], np.int64(0)), inc_masks[part]],
                axis=1,
            )
            order = np.argsort(cat_tags != -1, axis=1, kind="stable")
            cat_tags = np.take_along_axis(cat_tags, order, axis=1)[:, -ws:]
            cat_masks = np.take_along_axis(cat_masks, order, axis=1)[:, -ws:]
            self._tags[touched[part]] = cat_tags
            self._masks[touched[part]] = cat_masks
        self._set_gen[touched] = self._gen
        self._valid_sets += int(stale.sum())
        self._note_lines(int(inc_tags.max()))
        return evictions

    def _merge_rows_small(
        self,
        touched: np.ndarray,
        inc_tags: np.ndarray,
        inc_masks: np.ndarray,
    ) -> None:
        """Scalar twin of :meth:`_merge_rows` for a handful of sets.

        Sweep deltas usually append one or two lines; plain-Python row
        surgery beats the ~25-op vectorised pipeline by ~30x there.
        """
        ws = self.ways
        for t in range(touched.size):
            set_id = int(touched[t])
            self._ensure_row(set_id)
            row_t = self._tags[set_id]
            row_m = self._masks[set_id]
            incoming = [
                (int(inc_tags[t, w]), int(inc_masks[t, w]))
                for w in range(ws)
                if inc_tags[t, w] != -1
            ]
            old = [
                (int(row_t[w]), int(row_m[w])) for w in range(ws) if row_t[w] != -1
            ]
            merged = (old + incoming)[-ws:]
            row_t[:] = -1
            row_m[:] = 0
            pad = ws - len(merged)
            for w, (tag, mask) in enumerate(merged):
                row_t[pad + w] = tag
                row_m[pad + w] = mask
            self._note_lines(merged[-1][0])

    def _promote_rows(
        self,
        touched: np.ndarray,
        row_idx: np.ndarray,
        ways_idx: np.ndarray,
        ranks: np.ndarray,
        or_masks: np.ndarray,
    ) -> None:
        """Re-access resident lines: OR sector masks, promote to MRU.

        ``(row_idx, ways_idx)`` locate each re-accessed line inside the
        gathered ``touched`` rows; ``ranks`` is its access order.  The
        final LRU order is: untouched entries in their previous relative
        order, then the re-accessed lines in access order.
        """
        sets_of = touched[row_idx]
        self._masks[sets_of, ways_idx] = self._masks[sets_of, ways_idx] | or_masks
        key = np.zeros((touched.size, self.ways), dtype=np.int64)
        key[row_idx, ways_idx] = 1 + ranks
        order = np.argsort(key, axis=1, kind="stable")
        self._tags[touched] = np.take_along_axis(self._tags[touched], order, axis=1)
        self._masks[touched] = np.take_along_axis(self._masks[touched], order, axis=1)

    # ------------------------------------------------------------------ #
    # analytic cyclic warm-up                                             #
    # ------------------------------------------------------------------ #

    def warm_cyclic(self, addrs: np.ndarray, stride: int | None = None) -> None:
        """Install the end state of one full pass over ``addrs``.

        ``addrs`` must be monotonically non-decreasing (the p-chase arrays
        of Section IV-A are sequential strided rings); arbitrary sequences
        fall back to exact simulation.  ``stride`` is an optional uniform
        stride hint that certifies monotonicity and enables the pure
        counting-pass grouping.

        The end state equals exact per-load simulation on *any* prior
        cache state (sets whose lines may re-access resident content are
        replayed literally; all others take the vectorised pure-insert
        path).  Consequences relied on elsewhere: repeating the pass
        (multiple warm-up rounds) is a fixed point, and warming a *suffix
        extension* of an already-warmed ring is exactly equivalent to
        re-warming the extended ring (the incremental-sweep invariant).
        """
        if self._virtual is not None:
            self._materialize()
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return
        if stride is None and addrs.size > 1 and not (np.diff(addrs) >= 0).all():
            self.access_many(addrs)
            return
        uniq, masks, sets, from_end, touched = self._ring_structure(addrs, stride)
        total_lines = int(uniq.size)
        if self._valid_sets == 0:
            self._fresh_install(uniq, masks, sets, from_end, touched)
        else:
            # A pass line at or below the largest resident tag may re-access
            # a resident line; whether it hits depends on the evictions the
            # pass itself performed earlier in that set, so those few sets
            # are replayed exactly.  Lines above the bound are provably
            # absent — their sets take the vectorised pure-insert path.
            cand_line = uniq <= self._current_line_max()
            if cand_line.any():
                in_cand_set = np.zeros(self.num_sets, dtype=bool)
                in_cand_set[sets[cand_line]] = True
                sel = in_cand_set[sets]
                self._replay_merge(uniq[sel], masks[sel], sets[sel])
                keep = ~sel
                uniq, masks, sets, from_end = (
                    uniq[keep],
                    masks[keep],
                    sets[keep],
                    from_end[keep],
                )
                touched = np.unique(sets)
            if uniq.size:
                inc_tags, inc_masks = self._incoming_rows(
                    uniq, masks, sets, from_end, touched
                )
                self._merge_rows(touched, inc_tags, inc_masks)
        self.line_misses += total_lines  # at least one fetch per line

    # ------------------------------------------------------------------ #
    # analytic timed p-chase                                              #
    # ------------------------------------------------------------------ #

    def chase_cyclic(
        self,
        addrs: np.ndarray,
        n_samples: int,
        *,
        warmed: bool = True,
        stride: int | None = None,
        update_state: bool = True,
    ) -> np.ndarray | None:
        """Analytic timed pass of a cyclic monotone p-chase.

        Computes the hit/miss vector of the first ``n_samples`` loads of
        the cyclic walk ``addrs[i % len(addrs)]`` directly from per-set
        occupancy, with zero per-load Python:

        * a set holding ``k <= ways`` ring lines serves every access from
          the warmed state (pure hits);
        * an over-subscribed set (``k > ways``) thrashes — every line
          access misses, intra-line sector repeats hit — because a cyclic
          monotone walk under LRU always evicts a line exactly one
          revolution before re-accessing it.

        Preconditions (the caller's contract; ``None`` means "fall back
        to exact simulation"):

        * ``addrs`` is monotone non-decreasing (certified by ``stride``);
        * ``warmed=True``: the cache state is the *fresh* warm fixed point
          of this exact ring (flush + :meth:`warm_cyclic`);
        * ``warmed=False``: the cache is flushed (verified internally).

        ``update_state=False`` computes hits and statistics but leaves the
        cache at the warm fixed point — used by incremental sweeps, where
        the next delta warm re-establishes the fixed point invariant.

        Equivalence with the exact loop (hits, end state, statistics) is
        pinned by property tests.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        ring = int(addrs.size)
        if ring == 0 or n_samples <= 0:
            return None
        if stride is None and ring > 1 and not (np.diff(addrs) >= 0).all():
            return None
        if self._virtual is not None:
            v = self._fixed_point_ring()
            matches = (
                warmed
                and v is not None
                and v[0] == int(addrs[0])
                and v[1] // v[2] == ring
                and int(addrs[-1]) == v[0] + (ring - 1) * v[2]
                and (stride is None or stride == v[2])
            )
            if matches and not update_state:
                # The deferred ring *is* the warmed fixed point: answer the
                # chase from the descriptor without touching any rows.
                stride = v[2]
            else:
                self._materialize()
        if not warmed and self._valid_sets != 0:
            return None
        ws = self.ways
        n = int(n_samples)
        wraps, rem = divmod(n, ring)
        pattern_len = ring if wraps >= 1 else rem
        sub = addrs[:pattern_len]
        lines, bits = self._addr_parts(sub)
        run_first = np.empty(pattern_len, dtype=bool)
        run_first[0] = True
        np.not_equal(lines[1:], lines[:-1], out=run_first[1:])
        run_starts = np.flatnonzero(run_first)
        run_ids = np.cumsum(run_first) - 1
        uniq = lines[run_starts]
        # Same (line, sector) repeats are contiguous in a monotone walk.
        sec_key = lines * self.sectors_per_line + (
            (sub % self.line_size) // self.fetch_granularity
        )
        dup = np.empty(pattern_len, dtype=bool)
        dup[0] = False
        np.equal(sec_key[1:], sec_key[:-1], out=dup[1:])

        counts = self._ring_set_counts(addrs, stride, uniq)
        thrash_line = counts > ws
        thrash = thrash_line[run_ids]
        steady = ~thrash | dup

        def assemble(pattern: np.ndarray, wrap1: np.ndarray | None) -> np.ndarray:
            if wrap1 is None:  # warmed: every wrap shows the steady pattern
                return pattern[:n] if wraps == 0 else np.resize(pattern, n)
            if wraps == 0:
                return wrap1[:n]
            return np.concatenate([wrap1, np.resize(pattern, n - ring)])

        if warmed:
            hits = assemble(steady, None)
            line_miss_v = assemble(thrash & run_first, None)
            sector_miss_v = assemble(thrash & ~run_first & ~dup, None)
            evict_v = line_miss_v  # thrashing rows are always full
        else:
            # Cold wrap 1: first touch of each (line, sector) misses; the
            # first ``ways`` inserts per set land in empty slots.
            rank = self._cold_rank(stride, uniq)
            wrap1_evict = run_first & (rank >= ws)[run_ids]
            hits = assemble(steady, dup)
            line_miss_v = assemble(thrash & run_first, run_first)
            sector_miss_v = assemble(
                thrash & ~run_first & ~dup, ~run_first & ~dup
            )
            evict_v = assemble(thrash & run_first, wrap1_evict)
        self.hits += int(hits.sum())
        self.line_misses += int(line_miss_v.sum())
        self.sector_misses += int(sector_miss_v.sum())
        self.evictions += int(evict_v.sum())

        if update_state:
            if not warmed:
                base_seq = addrs if wraps >= 1 else sub
                if base_seq.size:
                    u, m, s, fe, t = self._ring_structure(base_seq, stride)
                    self._fresh_install(u, m, s, fe, t)
                if wraps >= 1 and rem:
                    self._apply_warm_prefix(
                        sub, rem, lines, bits, run_first, run_ids, uniq, counts
                    )
            elif rem:
                self._apply_warm_prefix(
                    sub, rem, lines, bits, run_first, run_ids, uniq, counts
                )
        return hits

    def _cold_rank(self, stride: int | None, uniq: np.ndarray) -> np.ndarray:
        """Per-line insertion rank within its set over the cold wrap."""
        sets_total = self.num_sets
        m = uniq.size
        if stride is not None and 0 < stride <= self.line_size:
            # Consecutive lines: each set is touched once per num_sets lines.
            return np.arange(m, dtype=np.int64) // sets_total
        _, _, _, rank, _ = _group_rank(uniq % sets_total)
        return rank

    def _apply_warm_prefix(
        self,
        sub: np.ndarray,
        rem: int,
        lines: np.ndarray,
        bits: np.ndarray,
        run_first: np.ndarray,
        run_ids: np.ndarray,
        uniq: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Apply the first ``rem`` timed loads to a fresh-warmed state.

        Full wraps are identity on the warm fixed point; only the cut
        prefix moves the state.  Sets that fit (``k <= ways``) see pure
        promotions (a rotation of the freshly-warmed row); thrashing sets
        see pure inserts of their prefix lines.
        """
        ws = self.ways
        n_runs = int(run_ids[rem - 1]) + 1
        pre_lines = uniq[:n_runs]
        pre_sets = pre_lines % self.num_sets
        pre_counts = counts[:n_runs]
        # Sector mask of each prefix run, truncated at the cut.
        starts = np.flatnonzero(run_first[:rem])
        pre_masks = np.bitwise_or.reduceat(bits[:rem], starts)
        # Group prefix runs by set (tiny arrays — bounded by n_samples).
        _, _, _, rank, gsize_line = _group_rank(pre_sets)
        thrash_line = pre_counts > ws

        fit = ~thrash_line
        if fit.any():
            touched = np.unique(pre_sets[fit])
            row_idx = np.searchsorted(touched, pre_sets[fit])
            # Fresh-warm rows hold the k ring lines at ways [ways-k..); the
            # j-th prefix line of a set is its j-th ring line.
            ways_idx = ws - pre_counts[fit] + rank[fit]
            self._promote_rows(
                touched, row_idx, ways_idx, rank[fit], pre_masks[fit]
            )
        if thrash_line.any():
            sel = thrash_line
            touched = np.unique(pre_sets[sel])
            from_end = gsize_line[sel] - 1 - rank[sel]
            inc_tags, inc_masks = self._incoming_rows(
                pre_lines[sel], pre_masks[sel], pre_sets[sel], from_end, touched
            )
            self._merge_rows(touched, inc_tags, inc_masks)

    # ------------------------------------------------------------------ #
    # batch monotone pass on arbitrary state                              #
    # ------------------------------------------------------------------ #

    def pass_monotone(self, addrs: np.ndarray) -> np.ndarray | None:
        """Exact batch equivalent of ``[self.access(a) for a in addrs]``.

        ``addrs`` must be monotone non-decreasing (``None`` is returned
        otherwise, *before* any mutation).  Works on arbitrary cache
        state: sets whose touched lines are uniformly resident see pure
        promotions, sets with no resident touched line see pure inserts —
        both vectorised; mixed sets are replayed through the exact
        :meth:`access` loop.  Used by the probe protocols and by filtered
        (multi-level) p-chase walks.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if n > 1 and not (np.diff(addrs) >= 0).all():
            return None
        if self._virtual is not None:
            self._materialize()
        lines, bits = self._addr_parts(addrs)
        run_first = np.empty(n, dtype=bool)
        run_first[0] = True
        np.not_equal(lines[1:], lines[:-1], out=run_first[1:])
        run_starts = np.flatnonzero(run_first)
        run_ids = np.cumsum(run_first) - 1
        uniq = lines[run_starts]
        g_total = uniq.size
        run_masks = np.bitwise_or.reduceat(bits, run_starts)
        sec_key = lines * self.sectors_per_line + (
            (addrs % self.line_size) // self.fetch_granularity
        )
        dup = np.empty(n, dtype=bool)
        dup[0] = False
        np.equal(sec_key[1:], sec_key[:-1], out=dup[1:])

        set_ids = uniq % self.num_sets
        fresh = self._set_gen[set_ids] == self._gen
        rows = self._tags[set_ids]
        eq = (rows == uniq[:, None]) & fresh[:, None]
        found = eq.any(axis=1)
        fway = eq.argmax(axis=1)
        start_masks = np.where(found, self._masks[set_ids, fway], np.int64(0))

        # Group the touched lines by set; classify each set.
        order, gstarts, gsizes, rank, gsize_line = _group_rank(set_ids)
        found_per_group = np.add.reduceat(found[order].astype(np.int64), gstarts)
        group_of_line = np.empty(g_total, dtype=np.int64)
        group_of_line[order] = np.repeat(np.arange(gstarts.size), gsizes)
        all_found = (found_per_group == gsizes)[group_of_line]
        none_found = (found_per_group == 0)[group_of_line]
        mixed = ~all_found & ~none_found

        hits = np.empty(n, dtype=bool)

        sel = all_found
        if sel.any():
            addr_sel = sel[run_ids]
            hit_sel = dup[addr_sel] | (
                (bits[addr_sel] & start_masks[run_ids[addr_sel]]) != 0
            )
            hits[addr_sel] = hit_sel
            self.hits += int(hit_sel.sum())
            self.sector_misses += int((~hit_sel).sum())
            touched = np.unique(set_ids[sel])
            row_idx = np.searchsorted(touched, set_ids[sel])
            self._promote_rows(
                touched, row_idx, fway[sel], rank[sel], run_masks[sel]
            )
        sel = none_found
        if sel.any():
            addr_sel = sel[run_ids]
            hit_sel = dup[addr_sel]
            hits[addr_sel] = hit_sel
            self.hits += int(hit_sel.sum())
            self.line_misses += int(sel.sum())
            self.sector_misses += int(
                (~hit_sel & ~run_first[addr_sel]).sum()
            )
            touched = np.unique(set_ids[sel])
            from_end = gsize_line[sel] - 1 - rank[sel]
            inc_tags, inc_masks = self._incoming_rows(
                uniq[sel], run_masks[sel], set_ids[sel], from_end, touched
            )
            inserted = np.bincount(
                np.searchsorted(touched, set_ids[sel]), minlength=touched.size
            )
            evictions = self._merge_rows(
                touched,
                inc_tags,
                inc_masks,
                inserted_counts=inserted,
            )
            self.evictions += int(evictions.sum())
        if mixed.any():
            addr_sel = mixed[run_ids]
            idx = np.flatnonzero(addr_sel)
            access = self.access
            for i in idx:
                hits[i] = access(int(addrs[i]))
        return hits

    # ------------------------------------------------------------------ #
    # maintenance & introspection                                         #
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Invalidate all lines — O(1) via the generation stamp."""
        self._virtual = None
        self._gen += 1
        self._valid_sets = 0

    def reset_stats(self) -> None:
        self.hits = self.sector_misses = self.line_misses = self.evictions = 0

    @property
    def misses(self) -> int:
        return self.sector_misses + self.line_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def resident_lines(self) -> int:
        """Number of valid lines currently cached — test helper."""
        if self._virtual is not None:
            self._materialize()
        valid_rows = self._set_gen == self._gen
        return int((self._tags[valid_rows] != -1).sum())

    def snapshot(self) -> list[list[tuple[int, int]]]:
        """Per-set (tag, mask) pairs, LRU-first — test helper."""
        if self._virtual is not None:
            self._materialize()
        out: list[list[tuple[int, int]]] = []
        for s in range(self.num_sets):
            if self._set_gen[s] != self._gen:
                out.append([])
                continue
            out.append(
                [
                    (int(self._tags[s, w]), int(self._masks[s, w]))
                    for w in range(self.ways)
                    if self._tags[s, w] != -1
                ]
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimCache({self.name!r}, size={self.size}, line={self.line_size}, "
            f"fg={self.fetch_granularity}, ways={self.ways}, sets={self.num_sets})"
        )
