"""Sectored, set-associative, LRU cache model.

This single class produces every memory-hierarchy effect the paper's
microbenchmarks (Section IV) probe for:

* **capacity cliffs** — a cyclic pointer-chase over an array larger than
  the cache thrashes the over-subscribed sets under LRU, so misses appear
  exactly past the capacity boundary (Fig. 1);
* **fetch granularity** — a cache line is divided into *sectors*; a miss
  fetches only the accessed sector (per-sector valid bits), so strides
  below the sector size produce intra-sector hits (Section IV-D);
* **cache line size** — strides above the line size skip whole lines,
  making the cache appear larger (Section IV-E);
* **cooperative eviction** — two actors filling the same physical cache
  evict each other; actors on distinct segments do not (Sections IV-F/G/H).

Performance design (the discovery pipeline runs tens of thousands of
p-chase passes, some over 50 MB L2 footprints):

* state is a pair of ``(num_sets, ways)`` NumPy matrices (tags and
  per-line sector masks), each row ordered LRU -> MRU with empty slots
  (``-1``) packed at the LRU side;
* :meth:`flush` is O(1): rows carry a generation stamp and are lazily
  reset on first touch after a flush;
* :meth:`warm_cyclic` installs the *end state* of a full cyclic pass
  analytically — fully vectorised on a flushed cache, per-touched-set
  merge otherwise — which is provably identical to step-by-step
  simulation for monotone address sequences (asserted by property tests);
* the timed portion of a p-chase only needs the first N loads (the paper
  stores only the first N results), which the exact :meth:`access` loop
  handles cheaply.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimCache"]


class SimCache:
    """One physical cache instance.

    Parameters mirror :class:`~repro.gpuspec.spec.CacheSpec`: total
    ``size`` bytes organised as ``ways``-associative sets of ``line_size``
    lines, each line split into ``line_size // fetch_granularity`` sectors.
    """

    __slots__ = (
        "name",
        "size",
        "line_size",
        "fetch_granularity",
        "ways",
        "num_sets",
        "sectors_per_line",
        "_tags",
        "_masks",
        "_gen",
        "_set_gen",
        "_valid_sets",
        "hits",
        "sector_misses",
        "line_misses",
        "evictions",
    )

    def __init__(
        self,
        size: int,
        line_size: int,
        fetch_granularity: int,
        ways: int,
        name: str = "cache",
    ) -> None:
        if size <= 0 or line_size <= 0 or ways <= 0:
            raise ValueError("size, line_size and ways must be positive")
        if line_size % fetch_granularity:
            raise ValueError("fetch_granularity must divide line_size")
        if size % (line_size * ways):
            raise ValueError("size must be a multiple of line_size * ways")
        self.name = name
        self.size = size
        self.line_size = line_size
        self.fetch_granularity = fetch_granularity
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        self.sectors_per_line = line_size // fetch_granularity
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._masks = np.zeros((self.num_sets, ways), dtype=np.int64)
        # Generation stamps make flush O(1): a row is only meaningful when
        # its stamp matches the current generation.
        self._gen = 1
        self._set_gen = np.zeros(self.num_sets, dtype=np.int64)
        self._valid_sets = 0
        self.hits = 0
        self.sector_misses = 0
        self.line_misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # internal helpers                                                    #
    # ------------------------------------------------------------------ #

    def _ensure_row(self, set_id: int) -> None:
        """Lazily reset a row whose generation stamp is stale."""
        if self._set_gen[set_id] != self._gen:
            self._tags[set_id] = -1
            self._masks[set_id] = 0
            self._set_gen[set_id] = self._gen
            self._valid_sets += 1

    # ------------------------------------------------------------------ #
    # exact per-access simulation                                         #
    # ------------------------------------------------------------------ #

    def access(self, addr: int) -> bool:
        """Perform one load; returns True on a (sector) hit.

        A tag match with an invalid sector is a *sector miss*: the sector
        is fetched (granularity = ``fetch_granularity``) and the access
        reports a miss, but no line is evicted.
        """
        line = addr // self.line_size
        sector_bit = 1 << ((addr % self.line_size) // self.fetch_granularity)
        set_id = line % self.num_sets
        self._ensure_row(set_id)
        tags = self._tags[set_id]
        masks = self._masks[set_id]
        ways = self.ways
        hit_way = -1
        for w in range(ways - 1, -1, -1):
            if tags[w] == line:
                hit_way = w
                break
        if hit_way >= 0:
            mask = int(masks[hit_way])
            hit = bool(mask & sector_bit)
            new_mask = mask | sector_bit
            # Promote to MRU (shift the tail left by one).
            if hit_way != ways - 1:
                tags[hit_way:-1] = tags[hit_way + 1 :]
                masks[hit_way:-1] = masks[hit_way + 1 :]
                tags[ways - 1] = line
            masks[ways - 1] = new_mask
            if hit:
                self.hits += 1
                return True
            self.sector_misses += 1
            return False
        # Line miss: evict the LRU slot (slot 0; empties pack there).
        if tags[0] != -1:
            self.evictions += 1
        tags[:-1] = tags[1:]
        masks[:-1] = masks[1:]
        tags[ways - 1] = line
        masks[ways - 1] = sector_bit
        self.line_misses += 1
        return False

    def access_many(self, addrs: np.ndarray) -> np.ndarray:
        """Exact simulation of an address sequence; returns hit booleans."""
        access = self.access
        return np.fromiter(
            (access(int(a)) for a in addrs), dtype=bool, count=len(addrs)
        )

    def probe(self, addr: int) -> bool:
        """Non-mutating hit test (no LRU update, no fill)."""
        line = addr // self.line_size
        set_id = line % self.num_sets
        if self._set_gen[set_id] != self._gen:
            return False
        sector_bit = 1 << ((addr % self.line_size) // self.fetch_granularity)
        tags = self._tags[set_id]
        for w in range(self.ways - 1, -1, -1):
            if tags[w] == line:
                return bool(int(self._masks[set_id, w]) & sector_bit)
        return False

    # ------------------------------------------------------------------ #
    # analytic cyclic warm-up                                             #
    # ------------------------------------------------------------------ #

    def warm_cyclic(self, addrs: np.ndarray) -> None:
        """Install the end state of one full pass over ``addrs``.

        ``addrs`` must be monotonically non-decreasing (the p-chase arrays
        of Section IV-A are sequential strided rings); arbitrary sequences
        fall back to exact simulation.  Repeating the pass (multiple
        warm-up rounds) is a fixed point, matching LRU behaviour.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return
        if addrs.size > 1 and not (np.diff(addrs) >= 0).all():
            self.access_many(addrs)
            return

        lines = addrs // self.line_size
        sectors = (addrs % self.line_size) // self.fetch_granularity
        sector_bits = np.left_shift(np.int64(1), sectors.astype(np.int64))
        # Monotone addresses: equal lines form contiguous runs, so the
        # first-touch (== sorted) order and per-line sector masks come
        # from an O(n) run-length pass instead of a sort.
        run_starts = np.concatenate(([0], np.flatnonzero(np.diff(lines)) + 1))
        uniq_lines = lines[run_starts]
        masks = np.bitwise_or.reduceat(sector_bits, run_starts)
        set_ids = uniq_lines % self.num_sets

        order = np.argsort(set_ids, kind="stable")
        sorted_sets = set_ids[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_sets)) + 1))
        group_sizes = np.diff(np.append(starts, sorted_sets.size))

        if self._valid_sets == 0:
            self._warm_fresh(uniq_lines, masks, set_ids, order, starts, group_sizes)
        else:
            self._warm_merge(uniq_lines, masks, set_ids, order, starts, group_sizes)
        self.line_misses += int(uniq_lines.size)  # at least one fetch per line

    def _warm_fresh(self, uniq_lines, masks, set_ids, order, starts, group_sizes) -> None:
        """Vectorised end-state install onto a flushed cache.

        Within each set group the last ``min(ways, k)`` lines survive, at
        way positions packed toward the MRU end.
        """
        ways = self.ways
        n = order.size
        # Position of each (ordered) entry counted from its group's end:
        # 1 == most recently accessed.
        idx_in_group = np.arange(n, dtype=np.int64) - np.repeat(starts, group_sizes)
        from_end = np.repeat(group_sizes, group_sizes) - idx_in_group
        keep = from_end <= ways
        kept = order[keep]
        kept_sets = set_ids[kept]
        kept_ways = ways - from_end[keep]  # MRU lands at ways-1

        touched = set_ids[order[starts]]  # unique touched sets
        self._tags[touched] = -1
        self._masks[touched] = 0
        self._set_gen[touched] = self._gen
        self._valid_sets += int(touched.size)
        self._tags[kept_sets, kept_ways] = uniq_lines[kept]
        self._masks[kept_sets, kept_ways] = masks[kept]
        # Pack survivors toward the MRU side for groups smaller than the
        # associativity: rows are built with empties at the low side
        # already, because kept_ways = ways - from_end >= ways - k.

    def _warm_merge(self, uniq_lines, masks, set_ids, order, starts, group_sizes) -> None:
        """Per-touched-set merge honouring pre-existing content.

        A pass with ``k > ways`` new lines in a set evicts everything that
        was there (thrash); with ``k <= ways`` the new lines land at the
        MRU side and the most recent old entries survive at the LRU side.
        A line present both before and during the pass unions its sector
        masks (it is re-accessed, never evicted, when ``k <= ways``).
        """
        ways = self.ways
        tags = self._tags
        all_masks = self._masks
        for g, start in enumerate(starts):
            size = int(group_sizes[g])
            group = order[start : start + size]
            set_id = int(set_ids[group[0]])
            self._ensure_row(set_id)
            new_lines = uniq_lines[group[-ways:]]
            new_masks = masks[group[-ways:]]
            row_tags = tags[set_id]
            row_masks = all_masks[set_id]
            if size >= ways:
                row_tags[:] = new_lines[-ways:]
                row_masks[:] = new_masks[-ways:]
                continue
            old = [
                (int(row_tags[w]), int(row_masks[w]))
                for w in range(ways)
                if row_tags[w] != -1
            ]
            old_mask_by_line = dict(old)
            new_set = set(int(x) for x in new_lines)
            survivors = [(t, m) for t, m in old if t not in new_set]
            merged = survivors + [
                (int(line), int(mask) | old_mask_by_line.get(int(line), 0))
                for line, mask in zip(new_lines, new_masks)
            ]
            merged = merged[-ways:]
            row_tags[:] = -1
            row_masks[:] = 0
            for w, (t, m) in enumerate(merged):
                row_tags[ways - len(merged) + w] = t
                row_masks[ways - len(merged) + w] = m

    # ------------------------------------------------------------------ #
    # maintenance & introspection                                         #
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Invalidate all lines — O(1) via the generation stamp."""
        self._gen += 1
        self._valid_sets = 0

    def reset_stats(self) -> None:
        self.hits = self.sector_misses = self.line_misses = self.evictions = 0

    @property
    def misses(self) -> int:
        return self.sector_misses + self.line_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def resident_lines(self) -> int:
        """Number of valid lines currently cached — test helper."""
        valid_rows = self._set_gen == self._gen
        return int((self._tags[valid_rows] != -1).sum())

    def snapshot(self) -> list[list[tuple[int, int]]]:
        """Per-set (tag, mask) pairs, LRU-first — test helper."""
        out: list[list[tuple[int, int]]] = []
        for s in range(self.num_sets):
            if self._set_gen[s] != self._gen:
                out.append([])
                continue
            out.append(
                [
                    (int(self._tags[s, w]), int(self._masks[s, w]))
                    for w in range(self.ways)
                    if self._tags[s, w] != -1
                ]
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimCache({self.name!r}, size={self.size}, line={self.line_size}, "
            f"fg={self.fetch_granularity}, ways={self.ways}, sets={self.num_sets})"
        )
