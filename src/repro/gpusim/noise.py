"""Measurement-noise injection.

The paper's statistical machinery exists because raw GPU timing is noisy:
a constant clock-read overhead rides on every sample (Section IV-A,
footnote 7), thermal/scheduling jitter spreads the distribution, and rare
spikes (TLB walks, ECC scrubs, unrelated traffic) create outliers that a
naive max/mean evaluation would mistake for change points (Fig. 2 caption:
"maximum is prone to outliers").

:class:`NoiseModel` reproduces those three effects so the K-S test, the
geometric reduction and the outlier-widening loop are exercised against
the disturbances they were designed for.  An optional *contention* mode
models a non-exclusive GPU (violating the paper's exclusivity assumption)
for failure-injection tests.
"""

from __future__ import annotations

import numpy as np

from repro.gpuspec.spec import NoiseSpec

__all__ = ["NoiseModel"]


class NoiseModel:
    """Vectorised latency-noise generator.

    Parameters
    ----------
    spec:
        Noise parameters (overhead, jitter, outlier rate/magnitude).
    rng:
        NumPy random generator; callers seed it for reproducibility.
    contention_factor:
        0.0 = exclusive GPU (the paper's assumption).  Positive values add
        bursty co-tenant interference: within bursts, latencies inflate by
        ``1 + contention_factor`` on average.
    """

    def __init__(
        self,
        spec: NoiseSpec,
        rng: np.random.Generator,
        contention_factor: float = 0.0,
    ) -> None:
        if contention_factor < 0:
            raise ValueError("contention_factor must be >= 0")
        self.spec = spec
        self.rng = rng
        self.contention_factor = contention_factor

    def perturb(self, base_latencies: np.ndarray) -> np.ndarray:
        """Return noisy observed latencies for a vector of true latencies.

        Every sample receives the constant measurement overhead plus
        Gaussian jitter; a small Bernoulli fraction receives an outlier
        spike.  Latencies never drop below 1 cycle.
        """
        lat = np.asarray(base_latencies, dtype=np.float64)
        n = lat.size
        out = lat + self.spec.measurement_overhead
        if self.spec.jitter_sigma > 0:
            out = out + self.rng.normal(0.0, self.spec.jitter_sigma, size=n)
        if self.spec.outlier_probability > 0:
            spikes = self.rng.random(n) < self.spec.outlier_probability
            if spikes.any():
                # Heavy-tailed spike heights: half to 1.5x the magnitude.
                heights = self.spec.outlier_magnitude * (
                    0.5 + self.rng.random(int(spikes.sum()))
                )
                out[spikes] += heights
        if self.contention_factor > 0:
            out = self._apply_contention(out)
        return np.maximum(out, 1.0)

    def _apply_contention(self, latencies: np.ndarray) -> np.ndarray:
        """Bursty co-tenant interference: geometric burst lengths."""
        n = latencies.size
        out = latencies.copy()
        i = 0
        burst_start_p = 0.02
        while i < n:
            if self.rng.random() < burst_start_p:
                length = 1 + int(self.rng.geometric(0.2))
                end = min(n, i + length)
                scale = 1.0 + self.contention_factor * (0.5 + self.rng.random())
                out[i:end] *= scale
                i = end
            else:
                i += 1
        return out

    def perturb_scalar(self, base_latency: float) -> float:
        """Convenience wrapper for a single sample."""
        return float(self.perturb(np.array([base_latency]))[0])
