"""Compute-throughput model (paper Section VII future-work extension).

The paper's conclusions plan to "incorporate compute capability metrics,
such as FLOPS for INT and FP datatypes of different precisions" and to
"characterize specialized engines, like tensor cores".  This module
provides the substrate for that extension: per-datatype peak throughputs
live in :attr:`~repro.gpuspec.spec.GPUSpec.compute_throughput`
(tensor-engine entries use the ``tensor_`` prefix), and the model applies
the same occupancy-saturation dynamics as the bandwidth model — a FLOPS
microbenchmark is a stream benchmark whose payload is arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.gpuspec.spec import GPUSpec

__all__ = ["ComputeThroughputModel", "TENSOR_PREFIX"]

TENSOR_PREFIX = "tensor_"


class ComputeThroughputModel:
    """Achieved arithmetic throughput per datatype."""

    def __init__(self, spec: GPUSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng

    @property
    def datatypes(self) -> tuple[str, ...]:
        """Datatypes the device exposes (empty = extension unsupported)."""
        return tuple(self.spec.compute_throughput)

    def is_tensor(self, dtype: str) -> bool:
        return dtype.startswith(TENSOR_PREFIX)

    def peak(self, dtype: str) -> float:
        try:
            return self.spec.compute_throughput[dtype]
        except KeyError:
            raise SimulationError(
                f"{self.spec.name}: no {dtype!r} throughput figure; "
                f"available: {sorted(self.spec.compute_throughput)}"
            ) from None

    def efficiency(self, blocks: int, threads_per_block: int, dtype: str) -> float:
        """Occupancy efficiency of an arithmetic-saturation kernel.

        Tensor engines need whole warps feeding matrix fragments, so they
        are more sensitive to partial blocks than the vector pipelines.
        """
        if blocks <= 0 or threads_per_block <= 0:
            raise SimulationError("launch configuration values must be positive")
        c = self.spec.compute
        optimal_blocks = c.num_sms * c.max_blocks_per_sm
        exponent = 0.55 if self.is_tensor(dtype) else 0.35
        f_blocks = min(1.0, blocks / optimal_blocks) ** exponent
        f_threads = min(1.0, threads_per_block / c.max_threads_per_block) ** 0.5
        return f_blocks * f_threads

    def achieved(
        self,
        dtype: str,
        blocks: int | None = None,
        threads_per_block: int | None = None,
        noisy: bool = True,
    ) -> float:
        """Observed FLOP/s (OP/s for integer types) of a saturation kernel."""
        c = self.spec.compute
        blocks = c.num_sms * c.max_blocks_per_sm if blocks is None else blocks
        threads = (
            c.max_threads_per_block if threads_per_block is None else threads_per_block
        )
        rate = self.peak(dtype) * self.efficiency(blocks, threads, dtype)
        if noisy:
            rate *= 1.0 + self.rng.normal(0.0, 0.01)
        return max(rate, 1.0)

    def kernel_seconds(
        self,
        total_ops: int,
        dtype: str,
        blocks: int | None = None,
        threads_per_block: int | None = None,
    ) -> float:
        """Wall time of a kernel issuing ``total_ops`` operations."""
        if total_ops <= 0:
            raise SimulationError("total_ops must be positive")
        rate = self.achieved(dtype, blocks, threads_per_block)
        return total_ops / rate + 3e-6  # launch overhead
