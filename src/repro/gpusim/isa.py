"""Load-instruction kinds and memory spaces.

The real MT4G steers every benchmark load into a specific memory path via
inline PTX / AMDGCN assembly or intrinsics (paper Sections IV-B/IV-C):

=====================  ============================================  ======
LoadKind               real-world instruction / intrinsic            vendor
=====================  ============================================  ======
``LD_GLOBAL_CA``       ``ld.global.ca.u32`` (cache at all levels)    NVIDIA
``LD_GLOBAL_CG``       ``ld.global.cg.u32`` (bypass L1, cache @ L2)  NVIDIA
``LDG``                ``__ldg(const uint32_t*)`` (read-only path)   NVIDIA
``TEX1DFETCH``         ``tex1Dfetch<uint32_t>(tex, i)``              NVIDIA
``LD_CONST``           ``ld.const.u32``                              NVIDIA
``LD_SHARED``          ``__shared__`` load                           NVIDIA
``LD_GLOBAL_V4``       ``ld.global.v4.u32`` (128-bit stream load)    NVIDIA
``FLAT_LOAD``          ``flat_load_dword``                           AMD
``FLAT_LOAD_GLC``      ``flat_load_dword`` with GLC/sc0=1 (skip L1)  AMD
``S_LOAD``             ``s_load_dword`` (scalar path via sL1d)       AMD
``DS_READ``            LDS load (``__shared__``)                     AMD
``FLAT_LOAD_X4``       ``flat_load_dwordx4`` (128-bit stream load)   AMD
=====================  ============================================  ======

The simulator's dispatch (:meth:`repro.gpusim.device.SimulatedGPU.resolve_path`)
maps each kind onto the ordered cache path it traverses — that mapping *is*
the semantic content of the assembly listings.
"""

from __future__ import annotations

import enum

__all__ = ["LoadKind", "MemorySpace", "space_for_kind", "VECTOR_LOAD_BYTES"]


class LoadKind(enum.Enum):
    # NVIDIA
    LD_GLOBAL_CA = "ld.global.ca.u32"
    LD_GLOBAL_CG = "ld.global.cg.u32"
    LDG = "__ldg"
    TEX1DFETCH = "tex1Dfetch"
    LD_CONST = "ld.const.u32"
    LD_SHARED = "ld.shared.u32"
    LD_GLOBAL_V4 = "ld.global.v4.u32"
    # AMD
    FLAT_LOAD = "flat_load_dword"
    FLAT_LOAD_GLC = "flat_load_dword glc"
    S_LOAD = "s_load_dword"
    DS_READ = "ds_read_b32"
    FLAT_LOAD_X4 = "flat_load_dwordx4"


class MemorySpace(enum.Enum):
    """Logical address space a buffer lives in."""

    GLOBAL = "global"
    TEXTURE = "texture"
    READONLY = "readonly"
    CONSTANT = "constant"
    SHARED = "shared"  # NVIDIA Shared Memory / AMD LDS


#: Bytes moved per vector load in the bandwidth kernels (128 bit, IV-I).
VECTOR_LOAD_BYTES = 16


_KIND_TO_SPACE = {
    LoadKind.LD_GLOBAL_CA: MemorySpace.GLOBAL,
    LoadKind.LD_GLOBAL_CG: MemorySpace.GLOBAL,
    LoadKind.LD_GLOBAL_V4: MemorySpace.GLOBAL,
    LoadKind.LDG: MemorySpace.READONLY,
    LoadKind.TEX1DFETCH: MemorySpace.TEXTURE,
    LoadKind.LD_CONST: MemorySpace.CONSTANT,
    LoadKind.LD_SHARED: MemorySpace.SHARED,
    LoadKind.FLAT_LOAD: MemorySpace.GLOBAL,
    LoadKind.FLAT_LOAD_GLC: MemorySpace.GLOBAL,
    LoadKind.FLAT_LOAD_X4: MemorySpace.GLOBAL,
    LoadKind.S_LOAD: MemorySpace.GLOBAL,
    LoadKind.DS_READ: MemorySpace.SHARED,
}


def space_for_kind(kind: LoadKind) -> MemorySpace:
    """The address space a load kind reads from (buffer-allocation arena)."""
    return _KIND_TO_SPACE[kind]
