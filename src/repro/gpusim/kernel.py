"""Kernel-execution engine: p-chase, probe and streaming kernels.

These functions are the simulator-side counterparts of the GPU kernels
MT4G launches (paper Section IV):

* :func:`run_pchase` — the fine-grained pointer-chase of Section IV-A:
  a warm-up pass populates the target memory element, then the timed pass
  records the latency of each of the first N dependent loads (the paper
  stores only the first N results because the pattern repeats);
* :func:`warm` / :func:`probe_hits` — the building blocks of the
  cooperative protocols (Amount, Physical-Sharing; Sections IV-F..H),
  which interleave warm-ups and probe passes from different cores/CUs;
* :func:`run_stream_kernel` — the Section IV-I bandwidth kernel: vector
  loads from maximal occupancy, timed with event records.

Two execution engines produce identical results (asserted by tests and
by ``benchmarks/bench_discovery_speed.py``):

* ``engine="analytic"`` (default) drives the timed pass through
  :meth:`SimCache.chase_cyclic` / :meth:`SimCache.pass_monotone` — a
  fully vectorised hit/latency computation with zero per-load Python —
  falling back to exact per-load simulation whenever a sequence or cache
  state falls outside the analytic preconditions;
* ``engine="exact"`` walks every load through the per-access simulator
  (the reference implementation the property tests compare against).

Warm-up passes are executed once per cache regardless of
``warmup_passes`` — a repeated cyclic warm is an LRU fixed point — while
the simulated run-time model still charges every requested pass, with the
first pass after a flush charged at *miss* latency (the loads of a cold
warm-up traverse to the terminal level; charging them at hit latency
would understate the Section V-A run-time report).

All functions account simulated GPU time on the device so the Section V-A
run-time model can report per-benchmark durations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.device import LoadPath, SimulatedGPU
from repro.gpusim.isa import LoadKind, VECTOR_LOAD_BYTES

__all__ = [
    "KernelLaunch",
    "pchase_addresses",
    "run_pchase",
    "run_pchase_ex",
    "warm",
    "probe_hits",
    "run_stream_kernel",
]

#: Default number of stored samples per timed pass (first-N capture).
DEFAULT_SAMPLES = 384

#: Valid measurement engines.
ENGINES = ("analytic", "exact")


@dataclass(frozen=True)
class KernelLaunch:
    """Grid/block shape of a kernel launch."""

    blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads_per_block <= 0:
            raise SimulationError("launch dimensions must be positive")

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads_per_block


def pchase_addresses(base: int, nbytes: int, stride: int) -> np.ndarray:
    """Addresses of one pass through a strided p-chase ring."""
    if stride <= 0:
        raise SimulationError("stride must be positive")
    if nbytes < stride:
        raise SimulationError(
            f"array of {nbytes} B cannot hold a single {stride} B element"
        )
    count = nbytes // stride
    return base + np.arange(count, dtype=np.int64) * stride


def _walk(path: LoadPath, addr: int) -> float:
    """Send one load down the path; returns the true (noise-free) latency."""
    for cache, latency in path.levels:
        if cache.access(addr):
            lat = latency
            break
    else:
        lat = path.terminal_latency
    for cache in path.side_effects:
        cache.access(addr)
    return lat


def _pass_filtered(
    cache, addrs: np.ndarray, n_samples: int, pending: np.ndarray
) -> np.ndarray | None:
    """Batch-walk the pending subset of a cyclic sequence through a cache.

    The pending positions of each ring revolution form a monotone
    subsequence, which :meth:`SimCache.pass_monotone` replays exactly on
    whatever state the cache is in.  Returns a full-length hit vector
    (False at non-pending positions), or ``None`` if a segment cannot be
    replayed in batch.
    """
    ring = len(addrs)
    out = np.zeros(n_samples, dtype=bool)
    for seg in range(0, n_samples, ring):
        pm = pending[seg : seg + ring]
        idx = np.flatnonzero(pm)
        if idx.size == 0:
            continue
        h = cache.pass_monotone(addrs[idx])
        if h is None:
            return None
        out[seg + idx] = h
    return out


def _walk_many(
    path: LoadPath,
    addrs: np.ndarray,
    n_samples: int,
    warmed: bool | None,
    stride: int | None,
    preserve_warm_state: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, bool]:
    """Batch timed pass over a cyclic ring: per-load latency vector.

    Combines the per-level analytic hit vectors into one latency vector:
    a load observes the latency of the first level it hits, and levels
    below a hit are not accessed (the ``pending`` cascade).  ``warmed``
    mirrors the :meth:`SimCache.chase_cyclic` contract (``None`` =
    unknown state, use the arbitrary-state batch walker throughout).

    Returns ``(latencies, first_level_hits, preserved)`` where
    ``preserved`` reports whether every touched cache was left at the
    warm fixed point.  A *fresh* warmed pass (``warmed=True``, uniform
    stride) may route a level through the filtered batch walker — its
    hit results are computed exactly on the materialised state — and
    then re-declare the ring's deferred fixed point: the next fresh run
    flushes + re-warms in the real tool anyway, so starting it from the
    declared fixed point is exactly equivalent (the incremental-sweep
    invariant).  On unknown prior state (``warmed=None``) a filtered or
    fallback level still forfeits preservation.
    """
    n = int(n_samples)
    lat = np.full(n, path.terminal_latency, dtype=np.float64)
    pending = np.ones(n, dtype=bool)
    first_hits: np.ndarray | None = None
    preserved = preserve_warm_state
    ring_nbytes = len(addrs) * stride if stride is not None else 0
    restorable = (
        preserve_warm_state and warmed is True and stride is not None and len(addrs) > 0
    )

    def filtered(cache, mask: np.ndarray) -> np.ndarray | None:
        h = _pass_filtered(cache, addrs, n, mask)
        nonlocal preserved
        if h is not None:
            if restorable:
                cache.warm_fixed_point(int(addrs[0]), ring_nbytes, stride)
            else:
                preserved = False
        return h

    for level_idx, (cache, level_lat) in enumerate(path.levels):
        hits = None
        if pending.all() and warmed is not None:
            hits = cache.chase_cyclic(
                addrs,
                n,
                warmed=warmed,
                stride=stride,
                update_state=not preserve_warm_state,
            )
        if hits is None:
            if not pending.any():
                hits = np.zeros(n, dtype=bool)
            else:
                hits = filtered(cache, pending)
                if hits is None:
                    return None, None, False
        if level_idx == 0:
            first_hits = hits.copy()
        lat[pending & hits] = level_lat
        pending &= ~hits
    full = np.ones(n, dtype=bool)
    for cache in path.side_effects:
        h = None
        if warmed is not None:
            h = cache.chase_cyclic(
                addrs,
                n,
                warmed=warmed,
                stride=stride,
                update_state=not preserve_warm_state,
            )
        if h is None:
            if filtered(cache, full) is None:
                return None, None, False
    return lat, first_hits, preserved


def warm(
    device: SimulatedGPU,
    kind: LoadKind,
    addrs: np.ndarray,
    sm: int = 0,
    core: int = 0,
    stride: int | None = None,
    engine: str = "analytic",
) -> None:
    """One untimed pass: populate every cache on the path (Section IV-A).

    With the analytic engine and a uniform-stride ring the warm is
    deferred per cache (:meth:`SimCache.warm_cyclic_lazy`): protocols warm
    caches on the whole path but typically probe only the first level, and
    the next flush discards the untouched warms for free.
    """
    path = device.resolve_path(kind, sm, core)
    lazy = engine == "analytic" and stride is not None and len(addrs) > 0
    caches = [c for c, _ in path.levels] + list(path.side_effects)
    for cache in caches:
        if lazy:
            cache.warm_cyclic_lazy(int(addrs[0]), len(addrs) * stride, stride)
        else:
            cache.warm_cyclic(addrs, stride=stride)
    first_latency = path.levels[0][1] if path.levels else path.terminal_latency
    # Protocol warms are charged at first-level hit latency irrespective
    # of cache state (the run_pchase cold-warm miss surcharge relies on
    # knowing a flush preceded; this standalone warm cannot know that).
    device.account_loads(len(addrs), len(addrs) * first_latency)


def probe_hits(
    device: SimulatedGPU,
    kind: LoadKind,
    addrs: np.ndarray,
    sm: int = 0,
    core: int = 0,
    engine: str = "analytic",
) -> tuple[np.ndarray, np.ndarray]:
    """Timed probe pass: per-load (first-level hit?, observed latency).

    The hit booleans refer to the *first* cache level of the path — the
    cooperative protocols ask "did my data survive in the target cache?".
    The observed latencies include measurement noise, exactly what a real
    evaluation would have to threshold.

    The analytic engine batches the whole pass through
    :meth:`SimCache.pass_monotone`: a probe immediately precedes its own
    load, so the probe outcome *is* the first-level hit outcome of the
    walk.  Non-monotone address sequences fall back to the per-load loop.
    """
    path = device.resolve_path(kind, sm, core)
    n = len(addrs)
    hits = np.empty(n, dtype=bool)
    base = np.empty(n, dtype=np.float64)
    if not path.levels:
        hits[:] = True
        base[:] = path.terminal_latency
    else:
        done = False
        if engine == "analytic":
            lat, first_hits, _ = _walk_many(
                path,
                np.asarray(addrs, dtype=np.int64),
                n,
                warmed=None,
                stride=None,
                preserve_warm_state=False,
            )
            if lat is not None:
                base = lat
                hits = first_hits
                done = True
        if not done:
            first_cache = path.levels[0][0]
            for i, addr in enumerate(addrs):
                addr = int(addr)
                hits[i] = first_cache.probe(addr)
                base[i] = _walk(path, addr)
    device.account_loads(n, float(base.sum()))
    return hits, device.noise.perturb(base)


def run_pchase(
    device: SimulatedGPU,
    kind: LoadKind,
    base: int,
    nbytes: int,
    stride: int,
    n_samples: int = DEFAULT_SAMPLES,
    sm: int = 0,
    core: int = 0,
    warmup_passes: int = 1,
    flush: bool = False,
    engine: str = "analytic",
) -> np.ndarray:
    """Fine-grained p-chase: returns the first ``n_samples`` load latencies.

    Follows the paper's recipe: optional cache flush, ``warmup_passes``
    untimed passes over the whole ring (ensuring the array is resident in
    the benchmarked element), then a timed pass whose first N per-load
    latencies are recorded (wrapping around the ring if N exceeds the
    element count).
    """
    lat, _ = run_pchase_ex(
        device,
        kind,
        base,
        nbytes,
        stride,
        n_samples=n_samples,
        sm=sm,
        core=core,
        warmup_passes=warmup_passes,
        flush=flush,
        engine=engine,
    )
    return lat


def run_pchase_ex(
    device: SimulatedGPU,
    kind: LoadKind,
    base: int,
    nbytes: int,
    stride: int,
    n_samples: int = DEFAULT_SAMPLES,
    sm: int = 0,
    core: int = 0,
    warmup_passes: int = 1,
    flush: bool = False,
    engine: str = "analytic",
    incremental_from: int | None = None,
    preserve_warm_state: bool = False,
) -> tuple[np.ndarray, bool]:
    """:func:`run_pchase` plus the incremental-sweep driver interface.

    ``incremental_from`` (bytes of an identical-base, identical-stride
    ring already warmed to its LRU fixed point) replaces the flush +
    full-ring warm with the O(delta) equivalent: a *growing* probe warms
    only the appended suffix, a *shrinking* probe (the binary-descent
    case) truncates the deferred fixed point in place — both provably the
    same end state — while the simulated run-time model still charges the
    full flush + warm the real tool would execute.
    ``preserve_warm_state`` asks the analytic timed pass to leave the
    caches at the warm fixed point so the *next* sweep size can extend it.

    Returns ``(latencies, preserved)``; ``preserved`` is True only when
    the fixed point was actually kept (analytic pass, no fallback).
    """
    if n_samples <= 0:
        raise SimulationError("n_samples must be positive")
    if engine not in ENGINES:
        raise SimulationError(f"unknown engine {engine!r}; valid: {ENGINES}")
    device.sm(sm).pin_core(core)
    analytic = engine == "analytic"
    # There is no warm fixed point to preserve without a warm-up pass: a
    # cold timed pass must apply its state mutations like the exact engine.
    if warmup_passes <= 0:
        preserve_warm_state = False
    incremental = (
        analytic
        and incremental_from is not None
        and incremental_from > 0
        and flush
        and warmup_passes > 0
    )
    if flush and not incremental:
        device.flush_caches()
    path = device.resolve_path(kind, sm, core)
    if not path.levels:
        # Scratchpad: constant latency, no cache dynamics.
        base_lat = np.full(n_samples, path.terminal_latency)
        device.account_loads(n_samples, float(base_lat.sum()))
        return device.noise.perturb(base_lat), False

    addrs = pchase_addresses(base, nbytes, stride)
    n_ring = len(addrs)
    caches = [c for c, _ in path.levels] + list(path.side_effects)
    if warmup_passes > 0:
        # One executed pass stands in for all requested passes: a repeated
        # cyclic warm is an LRU fixed point (property-tested).
        if analytic and flush:
            # Fresh warm after a flush (or its incremental equivalent):
            # record the fixed point as a deferred descriptor — O(1).  An
            # extension (growing probe) or truncation (shrinking probe,
            # the binary-descent case) is only accepted against a cache
            # that provably still holds the previous ring's fixed point;
            # otherwise the run degrades to a real flush + fresh warm.
            if incremental:
                if incremental_from <= nbytes:
                    reused = all(
                        c.extend_fixed_point(base, nbytes, stride) for c in caches
                    )
                else:
                    reused = all(
                        c.truncate_fixed_point(base, nbytes, stride) for c in caches
                    )
                if not reused:
                    device.flush_caches()
                    incremental = False
            if not incremental:
                for cache in caches:
                    cache.warm_fixed_point(base, nbytes, stride)
        else:
            # Exact engine, or a warm onto unknown (unflushed) state:
            # incremental reuse never applies here.
            for cache in caches:
                cache.warm_cyclic(addrs, stride=stride)

    base_lat = None
    preserved = False
    if analytic:
        if flush:  # fresh state (a real flush or its incremental equivalent)
            warmed: bool | None = warmup_passes > 0
        else:
            warmed = None  # unknown prior state: arbitrary-state batch walk
        base_lat, _, preserved = _walk_many(
            path, addrs, n_samples, warmed, stride, preserve_warm_state
        )
    if base_lat is None:
        base_lat = np.empty(n_samples, dtype=np.float64)
        for i in range(n_samples):
            base_lat[i] = _walk(path, int(addrs[i % n_ring]))
        preserved = False

    # Run-time model (Section V-A): charge every requested warm pass; the
    # first pass after a flush runs against cold caches and is charged at
    # terminal (miss) latency, later passes at first-level hit latency.
    first_latency = path.levels[0][1]
    warm_cycles = warmup_passes * n_ring * first_latency
    if flush and warmup_passes > 0:
        warm_cycles += n_ring * (path.terminal_latency - first_latency)
    device.account_loads(
        n_samples + warmup_passes * n_ring, float(base_lat.sum()) + warm_cycles
    )
    return device.noise.perturb(base_lat), preserved


def run_stream_kernel(
    device: SimulatedGPU,
    level: str,
    op: str = "read",
    nbytes: int | None = None,
    launch: KernelLaunch | None = None,
    vector_bytes: int = VECTOR_LOAD_BYTES,
) -> float:
    """Streaming bandwidth kernel (Section IV-I); returns bytes/second.

    Defaults follow the paper's heuristics: ``num_SMs *
    max_blocks_per_SM`` blocks of ``max_threads_per_block`` threads using
    128-bit vector loads, a working set 4x the target level, timed with
    event records around a device-synchronised launch.
    """
    c = device.spec.compute
    if launch is None:
        launch = KernelLaunch(
            blocks=device.bandwidth.optimal_blocks,
            threads_per_block=c.max_threads_per_block,
        )
    if nbytes is None:
        cap = (
            device.spec.memory.size // 64
            if level == "DeviceMemory"
            else device.spec.cache(level).size * device.spec.cache(level).segments
        )
        # Loop over the level-resident buffer until the launch overhead is
        # negligible against the transfer time (real stream benchmarks
        # re-walk an L2-resident array many times for exactly this reason).
        nbytes = max(int(cap) * 4, 1 << 30)
    seconds = device.bandwidth.kernel_seconds(
        nbytes,
        level,
        op,
        blocks=launch.blocks,
        threads_per_block=launch.threads_per_block,
        vector_bytes=vector_bytes,
        mig=device.mig if device.mig.profile != "full" else None,
    )
    event = device.clock.event()
    device.clock.advance_seconds(seconds)
    elapsed = device.clock.stop(event)
    device.total_loads += nbytes // max(vector_bytes, 1)
    return nbytes / elapsed
