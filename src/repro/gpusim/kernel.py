"""Kernel-execution engine: p-chase, probe and streaming kernels.

These functions are the simulator-side counterparts of the GPU kernels
MT4G launches (paper Section IV):

* :func:`run_pchase` — the fine-grained pointer-chase of Section IV-A:
  a warm-up pass populates the target memory element, then the timed pass
  records the latency of each of the first N dependent loads (the paper
  stores only the first N results because the pattern repeats);
* :func:`warm` / :func:`probe_hits` — the building blocks of the
  cooperative protocols (Amount, Physical-Sharing; Sections IV-F..H),
  which interleave warm-ups and probe passes from different cores/CUs;
* :func:`run_stream_kernel` — the Section IV-I bandwidth kernel: vector
  loads from maximal occupancy, timed with event records.

All functions account simulated GPU time on the device so the Section V-A
run-time model can report per-benchmark durations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.device import LoadPath, SimulatedGPU
from repro.gpusim.isa import LoadKind, VECTOR_LOAD_BYTES

__all__ = [
    "KernelLaunch",
    "pchase_addresses",
    "run_pchase",
    "warm",
    "probe_hits",
    "run_stream_kernel",
]

#: Default number of stored samples per timed pass (first-N capture).
DEFAULT_SAMPLES = 384


@dataclass(frozen=True)
class KernelLaunch:
    """Grid/block shape of a kernel launch."""

    blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads_per_block <= 0:
            raise SimulationError("launch dimensions must be positive")

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads_per_block


def pchase_addresses(base: int, nbytes: int, stride: int) -> np.ndarray:
    """Addresses of one pass through a strided p-chase ring."""
    if stride <= 0:
        raise SimulationError("stride must be positive")
    if nbytes < stride:
        raise SimulationError(
            f"array of {nbytes} B cannot hold a single {stride} B element"
        )
    count = nbytes // stride
    return base + np.arange(count, dtype=np.int64) * stride


def _walk(path: LoadPath, addr: int) -> float:
    """Send one load down the path; returns the true (noise-free) latency."""
    for cache, latency in path.levels:
        if cache.access(addr):
            lat = latency
            break
    else:
        lat = path.terminal_latency
    for cache in path.side_effects:
        cache.access(addr)
    return lat


def warm(device: SimulatedGPU, kind: LoadKind, addrs: np.ndarray, sm: int = 0, core: int = 0) -> None:
    """One untimed pass: populate every cache on the path (Section IV-A)."""
    path = device.resolve_path(kind, sm, core)
    for cache, _ in path.levels:
        cache.warm_cyclic(addrs)
    for cache in path.side_effects:
        cache.warm_cyclic(addrs)
    first_latency = path.levels[0][1] if path.levels else path.terminal_latency
    device.account_loads(len(addrs), len(addrs) * first_latency)


def probe_hits(
    device: SimulatedGPU,
    kind: LoadKind,
    addrs: np.ndarray,
    sm: int = 0,
    core: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Timed probe pass: per-load (first-level hit?, observed latency).

    The hit booleans refer to the *first* cache level of the path — the
    cooperative protocols ask "did my data survive in the target cache?".
    The observed latencies include measurement noise, exactly what a real
    evaluation would have to threshold.
    """
    path = device.resolve_path(kind, sm, core)
    n = len(addrs)
    hits = np.empty(n, dtype=bool)
    base = np.empty(n, dtype=np.float64)
    if not path.levels:
        hits[:] = True
        base[:] = path.terminal_latency
    else:
        first_cache = path.levels[0][0]
        for i, addr in enumerate(addrs):
            addr = int(addr)
            hits[i] = first_cache.probe(addr)
            base[i] = _walk(path, addr)
    device.account_loads(n, float(base.sum()))
    return hits, device.noise.perturb(base)


def run_pchase(
    device: SimulatedGPU,
    kind: LoadKind,
    base: int,
    nbytes: int,
    stride: int,
    n_samples: int = DEFAULT_SAMPLES,
    sm: int = 0,
    core: int = 0,
    warmup_passes: int = 1,
    flush: bool = False,
) -> np.ndarray:
    """Fine-grained p-chase: returns the first ``n_samples`` load latencies.

    Follows the paper's recipe: optional cache flush, ``warmup_passes``
    untimed passes over the whole ring (ensuring the array is resident in
    the benchmarked element), then a timed pass whose first N per-load
    latencies are recorded (wrapping around the ring if N exceeds the
    element count).
    """
    if n_samples <= 0:
        raise SimulationError("n_samples must be positive")
    device.sm(sm).pin_core(core)
    if flush:
        device.flush_caches()
    path = device.resolve_path(kind, sm, core)
    if not path.levels:
        # Scratchpad: constant latency, no cache dynamics.
        base_lat = np.full(n_samples, path.terminal_latency)
        device.account_loads(n_samples, float(base_lat.sum()))
        return device.noise.perturb(base_lat)

    addrs = pchase_addresses(base, nbytes, stride)
    for _ in range(warmup_passes):
        for cache, _lat in path.levels:
            cache.warm_cyclic(addrs)
        for cache in path.side_effects:
            cache.warm_cyclic(addrs)
    n_ring = len(addrs)
    base_lat = np.empty(n_samples, dtype=np.float64)
    for i in range(n_samples):
        base_lat[i] = _walk(path, int(addrs[i % n_ring]))
    warm_cost = warmup_passes * n_ring * path.levels[0][1]
    device.account_loads(
        n_samples + warmup_passes * n_ring, float(base_lat.sum()) + warm_cost
    )
    return device.noise.perturb(base_lat)


def run_stream_kernel(
    device: SimulatedGPU,
    level: str,
    op: str = "read",
    nbytes: int | None = None,
    launch: KernelLaunch | None = None,
    vector_bytes: int = VECTOR_LOAD_BYTES,
) -> float:
    """Streaming bandwidth kernel (Section IV-I); returns bytes/second.

    Defaults follow the paper's heuristics: ``num_SMs *
    max_blocks_per_SM`` blocks of ``max_threads_per_block`` threads using
    128-bit vector loads, a working set 4x the target level, timed with
    event records around a device-synchronised launch.
    """
    c = device.spec.compute
    if launch is None:
        launch = KernelLaunch(
            blocks=device.bandwidth.optimal_blocks,
            threads_per_block=c.max_threads_per_block,
        )
    if nbytes is None:
        cap = (
            device.spec.memory.size // 64
            if level == "DeviceMemory"
            else device.spec.cache(level).size * device.spec.cache(level).segments
        )
        # Loop over the level-resident buffer until the launch overhead is
        # negligible against the transfer time (real stream benchmarks
        # re-walk an L2-resident array many times for exactly this reason).
        nbytes = max(int(cap) * 4, 1 << 30)
    seconds = device.bandwidth.kernel_seconds(
        nbytes,
        level,
        op,
        blocks=launch.blocks,
        threads_per_block=launch.threads_per_block,
        vector_bytes=vector_bytes,
        mig=device.mig if device.mig.profile != "full" else None,
    )
    event = device.clock.event()
    device.clock.advance_seconds(seconds)
    elapsed = device.clock.stop(event)
    device.total_loads += nbytes // max(vector_bytes, 1)
    return nbytes / elapsed
