"""Saturating bandwidth model.

The paper's bandwidth benchmarks (Section IV-I) are *not* p-chase based:
they stream 128-bit vector loads/stores from as many threads as the device
can host and divide bytes moved by kernel time.  The authors found
heuristically that ``num_SMs * max_blocks_per_SM`` blocks with
``max_threads_per_block`` threads reach the highest throughput, and report
achieved (not theoretical) numbers — about 20 % below chipsandcheese-style
reports on the H100 L2.

This model reproduces those dynamics analytically:

* each level has a stored *achieved-at-best-config* bandwidth
  (``CacheSpec.read_bandwidth`` / ``MemorySpec.read_bandwidth``);
* occupancy below the recommended launch configuration degrades the
  throughput along concave saturation curves (more blocks/threads help
  sub-linearly — classic latency-hiding behaviour);
* scalar (4 B) loads cannot keep the pipelines full: the 128-bit vector
  factor rewards wide loads, mirroring the paper's use of
  ``ld.global.v4.u32`` / ``flat_load_dwordx4``;
* MIG slices scale the DRAM channel bandwidth by the memory-slice
  fraction (Section VI-C).

:meth:`BandwidthModel.stream_sweep_ns_per_byte` implements Fig. 5's
one-SM streaming-read experiment: throughput is flat while the working
set fits the L2 capacity *visible to one SM* and degrades towards DRAM
speed beyond it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.mig import MIGState
from repro.gpuspec.spec import GPUSpec

__all__ = ["BandwidthModel"]


class BandwidthModel:
    def __init__(self, spec: GPUSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng

    # ------------------------------------------------------------------ #
    # launch-configuration efficiency                                     #
    # ------------------------------------------------------------------ #

    @property
    def optimal_blocks(self) -> int:
        """The paper's heuristic optimum: num_SMs * max_blocks_per_SM."""
        c = self.spec.compute
        return c.num_sms * c.max_blocks_per_sm

    def efficiency(self, blocks: int, threads_per_block: int, vector_bytes: int) -> float:
        """Fraction of the achieved-peak bandwidth a launch config reaches."""
        if blocks <= 0 or threads_per_block <= 0 or vector_bytes <= 0:
            raise SimulationError("launch configuration values must be positive")
        c = self.spec.compute
        f_blocks = min(1.0, blocks / self.optimal_blocks) ** 0.35
        f_threads = min(1.0, threads_per_block / c.max_threads_per_block) ** 0.5
        f_vector = min(1.0, vector_bytes / 16.0) ** 0.25
        return f_blocks * f_threads * f_vector

    # ------------------------------------------------------------------ #
    # per-level achieved bandwidth                                        #
    # ------------------------------------------------------------------ #

    def _level_peaks(self, level: str, mig: MIGState | None) -> tuple[float, float]:
        """(read, write) achieved-peak bandwidth for a level name."""
        if level == "DeviceMemory":
            read = self.spec.memory.read_bandwidth
            write = self.spec.memory.write_bandwidth
            if mig is not None:
                read *= mig.memory_fraction
                write *= mig.memory_fraction
            return read, write
        cache = self.spec.cache(level)
        if cache.read_bandwidth <= 0:
            raise SimulationError(f"{level}: no bandwidth figure in the spec")
        return cache.read_bandwidth, cache.write_bandwidth

    def achieved(
        self,
        level: str,
        op: str = "read",
        blocks: int | None = None,
        threads_per_block: int | None = None,
        vector_bytes: int = 16,
        mig: MIGState | None = None,
        noisy: bool = True,
    ) -> float:
        """Observed bandwidth (bytes/s) for a streaming kernel on a level."""
        if op not in ("read", "write"):
            raise SimulationError(f"op must be 'read' or 'write', got {op!r}")
        c = self.spec.compute
        blocks = self.optimal_blocks if blocks is None else blocks
        threads = c.max_threads_per_block if threads_per_block is None else threads_per_block
        read, write = self._level_peaks(level, mig)
        peak = read if op == "read" else write
        bw = peak * self.efficiency(blocks, threads, vector_bytes)
        if noisy:
            bw *= 1.0 + self.rng.normal(0.0, 0.01)
        return max(bw, 1.0)

    def kernel_seconds(
        self,
        nbytes: int,
        level: str,
        op: str = "read",
        blocks: int | None = None,
        threads_per_block: int | None = None,
        vector_bytes: int = 16,
        mig: MIGState | None = None,
    ) -> float:
        """Wall time of a streaming kernel moving ``nbytes`` on a level."""
        if nbytes <= 0:
            raise SimulationError("nbytes must be positive")
        bw = self.achieved(level, op, blocks, threads_per_block, vector_bytes, mig)
        # Fixed launch overhead, as hipEventRecord would observe it.
        return nbytes / bw + 3e-6

    # ------------------------------------------------------------------ #
    # Fig. 5: single-SM streaming sweep                                   #
    # ------------------------------------------------------------------ #

    def stream_sweep_ns_per_byte(
        self,
        working_set_bytes: np.ndarray,
        mig: MIGState | None = None,
        noisy: bool = True,
    ) -> np.ndarray:
        """ns/B of a one-core streaming read over varying array sizes.

        While the working set fits the L2 capacity *visible to one SM*
        (one segment at most, less under small MIG slices), every element
        streams at single-SM L2 speed; beyond it, the excess fraction
        streams at single-SM DRAM speed — producing the throughput cliff
        of Fig. 5 exactly at the sys-sage-reported L2 size.
        """
        ws = np.asarray(working_set_bytes, dtype=np.float64)
        if (ws <= 0).any():
            raise SimulationError("working-set sizes must be positive")
        l2 = self.spec.cache("L2")
        if mig is None:
            visible_l2 = float(l2.size)  # one SM reaches one segment
            dram_read = self.spec.memory.read_bandwidth
        else:
            visible_l2 = float(mig.visible_l2_per_sm(self.spec))
            dram_read = mig.visible_dram_read_bandwidth(self.spec)

        # One core cannot saturate the device: scale per-level speeds by a
        # single-SM fraction.  The DRAM side is additionally capped by what
        # one SM's load/store units can keep in flight, so small MIG
        # instances (with plenty of channel headroom for one SM) converge
        # to the same beyond-cliff throughput as the full GPU.
        sm_fraction = 1.0 / self.spec.compute.num_sms
        l2_bw = l2.read_bandwidth * sm_fraction * 4.0
        sm_dram_limit = self.spec.memory.read_bandwidth * sm_fraction * 2.0
        dram_bw = min(sm_dram_limit, dram_read)

        frac_l2 = np.minimum(1.0, visible_l2 / ws)
        ns_per_byte = (frac_l2 / l2_bw + (1.0 - frac_l2) / dram_bw) * 1e9
        if noisy:
            ns_per_byte *= 1.0 + self.rng.normal(0.0, 0.01, size=ns_per_byte.shape)
        return ns_per_byte
