"""The simulated GPU device: wiring of caches, SMs, memory and clocks.

:class:`SimulatedGPU` stands in for the physical machines of the paper's
Table II.  It resolves every :class:`~repro.gpusim.isa.LoadKind` onto the
ordered cache path that load traverses (the semantic content of the
paper's inline-assembly listings), owns the lazily-instantiated cache
instances (per SM, per L2/L3 segment, per sL1d CU group), enforces the
scheduling constraints the Section V anomalies stem from, and accounts
simulated time for the Section V-A run-time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulingError, SimulationError
from repro.gpusim.bandwidth import BandwidthModel
from repro.gpusim.cache import SimCache
from repro.gpusim.clock import CycleClock
from repro.gpusim.isa import LoadKind, MemorySpace, space_for_kind
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.mig import MIGState, resolve_mig
from repro.gpusim.noise import NoiseModel
from repro.gpusim.smcore import SMCore
from repro.gpuspec.spec import CacheScope, CacheSpec, GPUSpec, Quirk, Vendor

__all__ = ["SimulatedGPU", "LoadPath"]


@dataclass
class LoadPath:
    """Resolved route of a load: caches tried in order, then memory.

    ``levels`` pairs each cache with the latency *observed on a hit at
    that level via this logical path* (the paper's Table III shows e.g.
    L1=38 but Readonly=35 cycles through the same silicon on the H100).
    ``side_effects`` are caches that get filled but add no latency —
    used to model the P6000's flaky constant-path cross-talk.
    """

    kind: LoadKind
    levels: list[tuple[SimCache, float]]
    terminal_latency: float
    side_effects: list[SimCache] = field(default_factory=list)


class SimulatedGPU:
    """A complete simulated device built from a :class:`GPUSpec`.

    Parameters
    ----------
    spec:
        Hardware description (see :mod:`repro.gpuspec.presets`).
    seed:
        Seeds all stochastic behaviour (noise, quirk coin-flips).
    cache_config:
        NVIDIA L1/shared carveout: ``PreferL1`` (default, as in the
        paper's Section V), ``PreferShared`` or ``PreferEqual``.
    contention:
        0.0 models the paper's exclusive-GPU assumption; positive values
        inject co-tenant interference (failure testing).
    mig_profile:
        Optional MIG instance to present instead of the full GPU.
    """

    def __init__(
        self,
        spec: GPUSpec,
        *,
        seed: int = 0,
        cache_config: str = "PreferL1",
        contention: float = 0.0,
        mig_profile: str | None = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.cache_config = cache_config
        self.rng = np.random.default_rng(seed)
        self._quirk_rng = np.random.default_rng(seed + 0x9E3779B9)
        self.noise = NoiseModel(spec.noise, self.rng, contention_factor=contention)
        self.clock = CycleClock(spec.core_clock_hz)
        self.memory = DeviceMemory(spec.memory)
        self.bandwidth = BandwidthModel(spec, self.rng)
        self.mig: MIGState = resolve_mig(spec, mig_profile)
        self._sms: dict[int, SMCore] = {}
        self._gpu_caches: dict[tuple[str, int], SimCache] = {}
        self._cu_group_caches: dict[int, SimCache] = {}
        self._l2_fetch_granularity_override: int | None = None
        self.total_loads = 0
        # Monotone counter bumped by every accounted kernel operation and
        # every flush: lets drivers prove "nothing touched the caches in
        # between" when reusing warm state across p-chase runs.
        self.op_serial = 0
        # Executed device-wide flushes.  Warm-state reuse (suffix warms,
        # descent truncations) skips the flush entirely; this counter is
        # how the benchmarks and tests observe that no flush + full
        # re-warm happened on the hot path.
        self.flush_count = 0

    @classmethod
    def from_preset(cls, name: str, **kwargs) -> "SimulatedGPU":
        from repro.gpuspec.presets import get_preset

        return cls(get_preset(name), **kwargs)

    # ------------------------------------------------------------------ #
    # identity                                                            #
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def vendor(self) -> Vendor:
        return self.spec.vendor

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedGPU({self.spec.name!r}, seed={self.seed})"

    # ------------------------------------------------------------------ #
    # compute resources                                                   #
    # ------------------------------------------------------------------ #

    def sm(self, index: int) -> SMCore:
        core = self._sms.get(index)
        if core is None:
            if not 0 <= index < self.visible_sms:
                raise SimulationError(
                    f"SM {index} out of range (instance exposes {self.visible_sms})"
                )
            core = SMCore(self.spec, index, self.cache_config)
            self._sms[index] = core
        return core

    @property
    def visible_sms(self) -> int:
        return self.mig.visible_sms(self.spec)

    def pin_block_to_cu(self, logical_cu: int) -> int:
        """Pin a thread block onto a CU; returns its *physical* id.

        AMD-only (paper Section IV-H).  Raises :class:`SchedulingError`
        under virtualization (MI300X VF, paper Section V item 1) or for
        out-of-range ids.
        """
        if self.vendor is not Vendor.AMD:
            raise SchedulingError("CU pinning is an AMD-only operation")
        if Quirk.VIRTUALIZED in self.spec.quirks:
            raise SchedulingError(
                f"{self.name}: virtualized GPU access — thread blocks "
                "cannot be pinned to specific CU ids"
            )
        ids = self.spec.compute.physical_cu_ids
        if not 0 <= logical_cu < self.spec.compute.num_sms:
            raise SchedulingError(f"CU {logical_cu} out of range")
        return ids[logical_cu] if ids else logical_cu

    # ------------------------------------------------------------------ #
    # cache instances                                                     #
    # ------------------------------------------------------------------ #

    def _gpu_cache(self, cache_spec: CacheSpec, segment: int) -> SimCache:
        key = (cache_spec.effective_physical_id, segment)
        cache = self._gpu_caches.get(key)
        if cache is None:
            fg = cache_spec.fetch_granularity
            if cache_spec.name == "L2" and self._l2_fetch_granularity_override:
                fg = self._l2_fetch_granularity_override
            cache = SimCache(
                size=cache_spec.size,
                line_size=cache_spec.line_size,
                fetch_granularity=fg,
                ways=cache_spec.ways,
                name=f"{cache_spec.name}.{segment}",
            )
            self._gpu_caches[key] = cache
        return cache

    def set_limit(self, limit: str, value: int) -> None:
        """``cudaDeviceSetLimit``-style runtime knob.

        Newer NVIDIA parts expose a configurable L2 fetch granularity
        (paper Section IV-D); setting it rebuilds the L2 instances so the
        next benchmark observes the new transaction size.
        """
        if limit != "l2_fetch_granularity":
            raise SimulationError(f"unknown device limit {limit!r}")
        if self.vendor is not Vendor.NVIDIA:
            raise SimulationError("the L2 fetch granularity knob is NVIDIA-only")
        l2 = self.spec.cache("L2")
        if value <= 0 or l2.line_size % value:
            raise SimulationError(
                f"L2 fetch granularity must divide the {l2.line_size} B line"
            )
        self._l2_fetch_granularity_override = int(value)
        stale = [k for k in self._gpu_caches if k[0] == l2.effective_physical_id]
        for key in stale:
            del self._gpu_caches[key]

    def l2_segment_of_sm(self, sm: int) -> int:
        """Which L2 segment an SM is wired to (paper footnote 13)."""
        l2 = self.spec.cache("L2")
        return (sm * l2.segments) // self.spec.compute.num_sms

    def l2_cache_for_sm(self, sm: int) -> SimCache:
        return self._gpu_cache(self.spec.cache("L2"), self.l2_segment_of_sm(sm))

    def sl1d_group_of_cu(self, logical_cu: int) -> int:
        """The sL1d sharing-group id of a CU (by *physical* id)."""
        sl1d = self.spec.cache("sL1d")
        ids = self.spec.compute.physical_cu_ids
        phys = ids[logical_cu] if ids else logical_cu
        return phys // sl1d.cu_share_group

    def sl1d_cache_for_cu(self, logical_cu: int) -> SimCache:
        group = self.sl1d_group_of_cu(logical_cu)
        cache = self._cu_group_caches.get(group)
        if cache is None:
            spec = self.spec.cache("sL1d")
            cache = SimCache(
                size=spec.size,
                line_size=spec.line_size,
                fetch_granularity=spec.fetch_granularity,
                ways=spec.ways,
                name=f"sL1d.group{group}",
            )
            self._cu_group_caches[group] = cache
        return cache

    def cache_instance(self, name: str, sm: int = 0, core: int = 0) -> SimCache:
        """The physical instance behind a logical cache name for (sm, core)."""
        cache_spec = self.spec.cache(name)
        if cache_spec.scope is CacheScope.SM:
            return self.sm(sm).cache_for(cache_spec, core)
        if cache_spec.scope is CacheScope.CU_GROUP:
            return self.sl1d_cache_for_cu(sm)
        if name == "L2":
            return self.l2_cache_for_sm(sm)
        return self._gpu_cache(cache_spec, 0)

    def flush_caches(self) -> None:
        """Invalidate every instantiated cache (between benchmark runs)."""
        self.op_serial += 1
        self.flush_count += 1
        for sm in self._sms.values():
            sm.flush_caches()
        for cache in self._gpu_caches.values():
            cache.flush()
        for cache in self._cu_group_caches.values():
            cache.flush()

    # ------------------------------------------------------------------ #
    # load-path resolution (the ISA dispatch)                             #
    # ------------------------------------------------------------------ #

    def resolve_path(self, kind: LoadKind, sm: int = 0, core: int = 0) -> LoadPath:
        """Resolve which caches a load of ``kind`` traverses from (sm, core)."""
        if self.vendor is Vendor.NVIDIA:
            return self._resolve_nvidia(kind, sm, core)
        return self._resolve_amd(kind, sm, core)

    def _lvl(self, name: str, sm: int, core: int) -> tuple[SimCache, float]:
        spec = self.spec.cache(name)
        return self.cache_instance(name, sm, core), spec.load_latency

    def _resolve_nvidia(self, kind: LoadKind, sm: int, core: int) -> LoadPath:
        dram = self.spec.memory.load_latency
        if kind in (LoadKind.LD_GLOBAL_CA, LoadKind.LD_GLOBAL_V4):
            levels = [self._lvl("L1", sm, core), self._lvl("L2", sm, core)]
        elif kind is LoadKind.LD_GLOBAL_CG:
            levels = [self._lvl("L2", sm, core)]
        elif kind is LoadKind.LDG:
            levels = [self._lvl("Readonly", sm, core), self._lvl("L2", sm, core)]
        elif kind is LoadKind.TEX1DFETCH:
            levels = [self._lvl("Texture", sm, core), self._lvl("L2", sm, core)]
        elif kind is LoadKind.LD_CONST:
            levels = [
                self._lvl("ConstL1", sm, core),
                self._lvl("ConstL1.5", sm, core),
                self._lvl("L2", sm, core),
            ]
            side = self._constant_path_side_effects(sm, core)
            return LoadPath(kind, levels, dram, side)
        elif kind is LoadKind.LD_SHARED:
            return LoadPath(kind, [], self.spec.scratchpad.load_latency)
        else:
            raise SimulationError(f"{kind} is not an NVIDIA load")
        return LoadPath(kind, levels, dram)

    def _constant_path_side_effects(self, sm: int, core: int) -> list[SimCache]:
        """P6000 quirk: constant traffic sometimes pollutes the L1 silicon.

        The paper (Section V, item 3) reports that the Pascal sharing
        benchmark "sometimes incorrectly indicates L1 and Constant L1
        cache sharing"; we model the underlying hardware cross-talk as a
        per-path coin flip so the flakiness is observable end-to-end.
        """
        if Quirk.FLAKY_L1_CONST_SHARING not in self.spec.quirks:
            return []
        if self._quirk_rng.random() < 0.5:
            return [self.cache_instance("L1", sm, core)]
        return []

    def _resolve_amd(self, kind: LoadKind, sm: int, core: int) -> LoadPath:
        dram = self.spec.memory.load_latency
        has_l3 = self.spec.has_cache("L3")
        tail = [self._lvl("L2", sm, core)]
        if has_l3:
            tail.append(self._lvl("L3", sm, core))
        if kind in (LoadKind.FLAT_LOAD, LoadKind.FLAT_LOAD_X4):
            levels = [self._lvl("vL1", sm, core), *tail]
        elif kind is LoadKind.FLAT_LOAD_GLC:
            levels = tail
        elif kind is LoadKind.S_LOAD:
            levels = [self._lvl("sL1d", sm, core), *tail]
        elif kind is LoadKind.DS_READ:
            return LoadPath(kind, [], self.spec.scratchpad.load_latency)
        else:
            raise SimulationError(f"{kind} is not an AMD load")
        return LoadPath(kind, levels, dram)

    # ------------------------------------------------------------------ #
    # allocation                                                          #
    # ------------------------------------------------------------------ #

    def alloc(self, space: MemorySpace | LoadKind, nbytes: int, sm: int = 0) -> int:
        """Allocate a benchmark buffer in the proper address space."""
        if isinstance(space, LoadKind):
            space = space_for_kind(space)
        if space is MemorySpace.CONSTANT:
            return self.memory.allocate_constant(nbytes)
        if space is MemorySpace.SHARED:
            self.sm(sm).allocate_shared(nbytes)
            return self.memory.allocate_scratch(nbytes)
        return self.memory.allocate_global(nbytes)

    def reset(self) -> None:
        """Flush caches and release all buffers (fresh benchmark state)."""
        self.flush_caches()
        self.memory.reset()
        for sm in self._sms.values():
            sm.free_shared()

    # ------------------------------------------------------------------ #
    # time accounting (Section V-A run-time model)                        #
    # ------------------------------------------------------------------ #

    def account_loads(self, count: int, cycles: float) -> None:
        """Record simulated GPU work (used by the kernel engine)."""
        if count < 0 or cycles < 0:
            raise SimulationError("accounting values must be non-negative")
        self.op_serial += 1
        self.total_loads += count
        self.clock.advance(cycles)

    def elapsed_seconds(self) -> float:
        return self.clock.elapsed_seconds()
