"""Simulated GPU substrate.

This package plays the role of the physical GPUs in the paper's Table II:
it produces the *observable* behaviour MT4G depends on — per-load latencies
with realistic cache cliffs, cooperative-eviction effects, scheduling
constraints and bandwidth saturation — from a declarative
:class:`~repro.gpuspec.spec.GPUSpec`.

Public entry point: :class:`~repro.gpusim.device.SimulatedGPU`.
"""

from repro.gpusim.cache import SimCache
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind, MemorySpace
from repro.gpusim.kernel import KernelLaunch

__all__ = ["SimCache", "SimulatedGPU", "LoadKind", "MemorySpace", "KernelLaunch"]
