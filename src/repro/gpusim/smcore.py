"""Streaming Multiprocessor / Compute Unit model.

Each SM/CU owns the per-SM cache instances (lazily created — a H100 has
132 SMs but benchmarks touch one or two), the shared-memory scratchpad,
and the scheduling constraints the paper's protocols depend on:

* cores are grouped into warps (``warp = core // warp_size``);
* L1-family caches may be split into independent *segments*, with cores
  block-mapped onto segments (paper Section IV-F discovers this split);
* the Pascal P6000 cannot schedule a thread on warp 3 of 4
  (paper Section V, item 2) — modelled by :meth:`check_warp_schedulable`.
"""

from __future__ import annotations

from repro.errors import AllocationError, SchedulingError, SimulationError
from repro.gpusim.cache import SimCache
from repro.gpuspec.spec import CacheScope, CacheSpec, GPUSpec, Quirk

__all__ = ["SMCore"]


class SMCore:
    """One SM (NVIDIA) or CU (AMD) instance."""

    def __init__(self, spec: GPUSpec, sm_index: int, cache_config: str = "PreferL1") -> None:
        if not 0 <= sm_index < spec.compute.num_sms:
            raise SimulationError(
                f"SM index {sm_index} out of range (device has {spec.compute.num_sms})"
            )
        self.spec = spec
        self.sm_index = sm_index
        self.cache_config = cache_config
        self._caches: dict[tuple[str, int], SimCache] = {}
        self._shared_allocated = 0

    # ------------------------------------------------------------------ #
    # scheduling                                                          #
    # ------------------------------------------------------------------ #

    @property
    def cores(self) -> int:
        return self.spec.compute.cores_per_sm

    @property
    def warps(self) -> int:
        return self.spec.compute.warps_per_sm

    def warp_of_core(self, core: int) -> int:
        self._check_core_index(core)
        return core // self.spec.compute.warp_size

    def check_warp_schedulable(self, warp: int) -> bool:
        """Can a thread be pinned onto this warp's lanes?

        Reproduces the P6000 quirk: with four warps per SM, warp 3 refuses
        thread placement, so protocols requiring full-SM coverage abort.
        """
        if not 0 <= warp < self.warps:
            raise SchedulingError(
                f"warp {warp} out of range (SM has {self.warps} warps)"
            )
        if Quirk.WARP_SCHEDULING_BUG in self.spec.quirks and self.warps >= 4 and warp == 3:
            return False
        return True

    def pin_core(self, core: int) -> int:
        """Pin a benchmark thread to a core; returns the core's warp.

        Raises :class:`SchedulingError` when the warp rejects placement.
        """
        warp = self.warp_of_core(core)
        if not self.check_warp_schedulable(warp):
            raise SchedulingError(
                f"SM {self.sm_index}: cannot schedule a thread on warp "
                f"{warp} (of {self.warps})"
            )
        return warp

    def _check_core_index(self, core: int) -> None:
        if not 0 <= core < self.cores:
            raise SchedulingError(
                f"core {core} out of range (SM has {self.cores} cores)"
            )

    # ------------------------------------------------------------------ #
    # per-SM caches                                                       #
    # ------------------------------------------------------------------ #

    def segment_of_core(self, cache_spec: CacheSpec, core: int) -> int:
        """Which cache segment serves this core (block mapping)."""
        self._check_core_index(core)
        if cache_spec.segments == 1:
            return 0
        cores_per_segment = self.cores // cache_spec.segments
        return min(core // cores_per_segment, cache_spec.segments - 1)

    def cache_for(self, cache_spec: CacheSpec, core: int = 0) -> SimCache:
        """The physical cache instance behind a logical space for a core."""
        if cache_spec.scope is not CacheScope.SM:
            raise SimulationError(
                f"{cache_spec.name} is not SM-scoped (scope={cache_spec.scope})"
            )
        segment = self.segment_of_core(cache_spec, core)
        key = (cache_spec.effective_physical_id, segment)
        cache = self._caches.get(key)
        if cache is None:
            size = cache_spec.size
            # The L1 family capacity follows the runtime carveout config.
            if cache_spec.effective_physical_id == "l1tex" and self.spec.l1_carveout:
                size = self.spec.effective_l1_size(self.cache_config)
            cache = SimCache(
                size=size,
                line_size=cache_spec.line_size,
                fetch_granularity=cache_spec.fetch_granularity,
                ways=cache_spec.ways,
                name=f"sm{self.sm_index}.{cache_spec.effective_physical_id}.{segment}",
            )
            self._caches[key] = cache
        return cache

    def flush_caches(self) -> None:
        for cache in self._caches.values():
            cache.flush()

    # ------------------------------------------------------------------ #
    # shared memory / LDS                                                 #
    # ------------------------------------------------------------------ #

    def allocate_shared(self, nbytes: int) -> None:
        """Reserve shared-memory capacity (``__shared__`` declaration)."""
        if nbytes <= 0:
            raise AllocationError("shared allocation must be positive")
        if self._shared_allocated + nbytes > self.spec.scratchpad.size:
            raise AllocationError(
                f"SM {self.sm_index}: shared memory exhausted "
                f"({self._shared_allocated}+{nbytes} > {self.spec.scratchpad.size} B)"
            )
        self._shared_allocated += nbytes

    def free_shared(self) -> None:
        self._shared_allocated = 0
