"""Service observability counters (``GET /metrics``).

A long-lived query service needs to answer "is the cache carrying the
traffic?" and "where does the time go?" without a profiler attached.
:class:`ServiceMetrics` keeps the in-process counters the endpoint
reports: per-route request/latency accounting and status histogram; the
store's hit/miss/store counters and the job queue's single-flight
counters are folded in at snapshot time (they live on those objects —
the metrics module never owns a second copy that could drift).
"""

from __future__ import annotations

import time
from typing import Any

from repro import faults

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """In-process request counters; cheap enough to touch per request."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        self.requests_total = 0
        #: HTTP status -> count.
        self.by_status: dict[int, int] = {}
        #: route template -> {count, seconds_total, seconds_max}.
        self.routes: dict[str, dict[str, float]] = {}
        #: requests that never reached a handler (unparseable HTTP).
        self.bad_requests = 0
        #: reports served from the last-known-good fallback (marked
        #: ``X-MT4G-Stale``) because their discovery was failing.
        self.stale_served = 0

    def observe(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request against its route template."""
        self.requests_total += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        bucket = self.routes.setdefault(
            route, {"count": 0, "seconds_total": 0.0, "seconds_max": 0.0}
        )
        bucket["count"] += 1
        bucket["seconds_total"] += float(seconds)
        bucket["seconds_max"] = max(bucket["seconds_max"], float(seconds))

    def snapshot(self, store=None, jobs=None) -> dict[str, Any]:
        """The ``GET /metrics`` payload (JSON-ready)."""
        out: dict[str, Any] = {
            "schema": "mt4g-repro-metrics/1",
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "http": {
                "requests_total": self.requests_total,
                "bad_requests": self.bad_requests,
                "by_status": {str(k): v for k, v in sorted(self.by_status.items())},
                "routes": {
                    route: {
                        "count": int(b["count"]),
                        "seconds_total": round(b["seconds_total"], 6),
                        "seconds_max": round(b["seconds_max"], 6),
                    }
                    for route, b in sorted(self.routes.items())
                },
            },
        }
        if store is not None:
            out["store"] = {
                "hits": store.hits,
                "misses": store.misses,
                "stores": store.stores,
                #: per-kind counts of I/O failures degraded to misses /
                #: skipped bookkeeping (read_error, corrupt_entry,
                #: write_error, lock_timeout, stats_corrupt).
                "degradations": dict(store.degradations),
            }
        if jobs is not None:
            out["jobs"] = {
                "inflight": jobs.inflight,
                "started": jobs.discoveries_started,
                "completed": jobs.discoveries_completed,
                "failed": jobs.discoveries_failed,
                "coalesced": jobs.coalesced,
                "retries": jobs.retries_total,
                "deadlines_expired": jobs.deadlines_expired,
                "breaker_opens": jobs.breaker_opens,
                "fast_failures": jobs.fast_failures,
                "open_breakers": len(jobs.open_breakers()),
                "executor_broken": jobs.executor_broken,
            }
        out["resilience"] = {
            "stale_served": self.stale_served,
            #: faults the active plan fired in *this* process — {} in
            #: production, where no plan is ever active.
            "faults_injected": faults.injected_counts(),
        }
        return out
