"""Service observability counters (``GET /metrics``).

A long-lived query service needs to answer "is the cache carrying the
traffic?" and "where does the time go?" without a profiler attached.
:class:`ServiceMetrics` keeps the in-process counters the endpoint
reports: per-route request/latency accounting and status histogram; the
store's hit/miss/store counters and the job queue's single-flight
counters are folded in at snapshot time (they live on those objects —
the metrics module never owns a second copy that could drift).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any

from repro import faults

__all__ = ["DURATION_BUCKETS", "ServiceMetrics", "to_prometheus"]

#: Histogram bucket upper bounds (seconds) for per-route request
#: latency.  Spans dict-lookup hot-cache hits (~sub-ms) through cold
#: discoveries (seconds); "+Inf" is implicit as the final bucket.
DURATION_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class ServiceMetrics:
    """In-process request counters; cheap enough to touch per request.

    All mutation is guarded by one lock: counters are bumped from the
    event loop *and* from executor threads (``run_in_executor`` store
    paths, the bench drivers), and ``+=`` on ints/dicts is not atomic
    across the interpreter's eval boundaries — unlocked, concurrent
    bumps can undercount.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.requests_total = 0
        #: HTTP status -> count.
        self.by_status: dict[int, int] = {}
        #: route template -> {count, seconds_total, seconds_max}.
        self.routes: dict[str, dict[str, float]] = {}
        #: requests that never reached a handler (unparseable HTTP).
        self.bad_requests = 0
        #: reports served from the last-known-good fallback (marked
        #: ``X-MT4G-Stale``) because their discovery was failing.
        self.stale_served = 0
        #: connection lifecycle counters (keep-alive transport):
        #: ``accepted`` TCP connections, ``reused`` = requests after the
        #: first on one connection, ``closed``, ``idle_reaped`` =
        #: keep-alive sockets reaped by the idle timeout, and
        #: ``write_errors`` = responses lost to a client that vanished
        #: mid-write (previously swallowed silently).
        self.connections = {
            "accepted": 0,
            "reused": 0,
            "closed": 0,
            "idle_reaped": 0,
            "write_errors": 0,
        }

    def observe(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request against its route template."""
        seconds = float(seconds)
        slot = bisect_left(DURATION_BUCKETS, seconds)
        with self._lock:
            self.requests_total += 1
            self.by_status[status] = self.by_status.get(status, 0) + 1
            bucket = self.routes.get(route)
            if bucket is None:
                bucket = self.routes[route] = {
                    "count": 0,
                    "seconds_total": 0.0,
                    "seconds_max": 0.0,
                    "buckets": [0] * (len(DURATION_BUCKETS) + 1),
                }
            bucket["count"] += 1
            bucket["seconds_total"] += seconds
            bucket["seconds_max"] = max(bucket["seconds_max"], seconds)
            bucket["buckets"][slot] += 1

    # Locked single-counter bumps for the transport path (previously
    # direct ``metrics.connections[...] += 1`` style mutations).

    def count_connection(self, event: str) -> None:
        with self._lock:
            self.connections[event] = self.connections.get(event, 0) + 1

    def count_bad_request(self) -> None:
        with self._lock:
            self.bad_requests += 1

    def count_stale(self) -> None:
        with self._lock:
            self.stale_served += 1

    def snapshot(
        self, store=None, jobs=None, hot_cache=None, tracer=None
    ) -> dict[str, Any]:
        """The ``GET /metrics`` payload (JSON-ready)."""
        with self._lock:
            routes = {
                route: {
                    "count": int(b["count"]),
                    "seconds_total": round(b["seconds_total"], 6),
                    "seconds_max": round(b["seconds_max"], 6),
                    "histogram": _cumulative(b["buckets"]),
                }
                for route, b in sorted(self.routes.items())
            }
            out: dict[str, Any] = {
                "schema": "mt4g-repro-metrics/1",
                "uptime_seconds": round(self._clock() - self.started_at, 3),
                "http": {
                    "requests_total": self.requests_total,
                    "bad_requests": self.bad_requests,
                    "connections": dict(self.connections),
                    "by_status": {
                        str(k): v for k, v in sorted(self.by_status.items())
                    },
                    "routes": routes,
                },
            }
        if store is not None:
            out["store"] = {
                "hits": store.hits,
                "misses": store.misses,
                "stores": store.stores,
                #: per-kind counts of I/O failures degraded to misses /
                #: skipped bookkeeping (read_error, corrupt_entry,
                #: write_error, lock_timeout, stats_corrupt).
                "degradations": dict(store.degradations),
            }
            tier_stats = getattr(store, "tier_stats", None)
            if callable(tier_stats):
                # A tiered store: the aggregate above answers "did the
                # stack carry the traffic", this answers "which tier".
                out["store"]["tiers"] = tier_stats()
        if jobs is not None:
            out["jobs"] = {
                "inflight": jobs.inflight,
                "started": jobs.discoveries_started,
                "completed": jobs.discoveries_completed,
                "failed": jobs.discoveries_failed,
                "coalesced": jobs.coalesced,
                "retries": jobs.retries_total,
                "deadlines_expired": jobs.deadlines_expired,
                "breaker_opens": jobs.breaker_opens,
                "fast_failures": jobs.fast_failures,
                "open_breakers": len(jobs.open_breakers()),
                "executor_broken": jobs.executor_broken,
                "peer_fetches": jobs.peer_fetches,
                "peer_fallbacks": jobs.peer_fallbacks,
                "pool_respawns": jobs.pool_respawns,
                "workers_warmed": jobs.workers_warmed,
            }
        if hot_cache is not None:
            out["hot_cache"] = hot_cache.stats()
        if tracer is not None:
            out["trace"] = tracer.stats()
        out["resilience"] = {
            "stale_served": self.stale_served,
            #: faults the active plan fired in *this* process — {} in
            #: production, where no plan is ever active.
            "faults_injected": faults.injected_counts(),
        }
        return out


def _bucket_label(bound: float) -> str:
    """Prometheus ``le`` label text for a bucket bound (ints bare)."""
    return str(int(bound)) if bound == int(bound) else str(bound)


def _cumulative(buckets: list[int]) -> dict[str, int]:
    """Non-cumulative internal counts -> ``{le: cumulative}`` mapping."""
    out: dict[str, int] = {}
    running = 0
    for bound, count in zip(DURATION_BUCKETS, buckets):
        running += count
        out[_bucket_label(bound)] = running
    out["+Inf"] = running + buckets[-1]
    return out


# ---------------------------------------------------------------------- #
# Prometheus text exposition (0.0.4)                                       #
# ---------------------------------------------------------------------- #


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`ServiceMetrics.snapshot` dict as Prometheus text.

    A pure function of the JSON snapshot (no second metric registry to
    drift from the JSON endpoint): same counters, standard exposition —
    ``mt4g_``-prefixed names, label-per-route/status/tier/kind, one
    ``# TYPE`` line per family.  Gauges are the point-in-time values
    (inflight, open breakers, uptime); everything else is a counter.
    """
    lines: list[str] = []

    def family(name: str, kind: str, samples: "list[tuple[str, Any]]") -> None:
        if not samples:
            return
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            if isinstance(value, bool):
                value = int(value)
            lines.append(f"{name}{labels} {value}")

    def label(**kv: str) -> str:
        inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in kv.items())
        return f"{{{inner}}}"

    family("mt4g_uptime_seconds", "gauge", [("", snapshot.get("uptime_seconds", 0))])
    http = snapshot.get("http", {})
    family(
        "mt4g_http_requests_total", "counter", [("", http.get("requests_total", 0))]
    )
    family(
        "mt4g_http_bad_requests_total", "counter", [("", http.get("bad_requests", 0))]
    )
    connections = http.get("connections", {})
    family(
        "mt4g_http_connections_total",
        "counter",
        [
            (label(event=event), connections[event])
            for event in ("accepted", "reused", "closed", "idle_reaped")
            if event in connections
        ],
    )
    family(
        "mt4g_http_connection_write_errors_total",
        "counter",
        [("", connections.get("write_errors", 0))],
    )
    family(
        "mt4g_http_responses_total",
        "counter",
        [(label(status=s), v) for s, v in http.get("by_status", {}).items()],
    )
    routes = http.get("routes", {})
    family(
        "mt4g_http_route_requests_total",
        "counter",
        [(label(route=r), b.get("count", 0)) for r, b in routes.items()],
    )
    family(
        "mt4g_http_route_seconds_total",
        "counter",
        [(label(route=r), b.get("seconds_total", 0.0)) for r, b in routes.items()],
    )
    family(
        "mt4g_http_route_seconds_max",
        "gauge",
        [(label(route=r), b.get("seconds_max", 0.0)) for r, b in routes.items()],
    )
    histogrammed = {r: b for r, b in routes.items() if b.get("histogram")}
    if histogrammed:
        name = "mt4g_http_request_duration_seconds"
        lines.append(f"# TYPE {name} histogram")
        for route, b in histogrammed.items():
            for le, count in b["histogram"].items():
                lines.append(f"{name}_bucket{label(route=route, le=le)} {count}")
            lines.append(f"{name}_sum{label(route=route)} {b.get('seconds_total', 0.0)}")
            lines.append(f"{name}_count{label(route=route)} {b.get('count', 0)}")

    store = snapshot.get("store")
    if store is not None:
        family("mt4g_store_hits_total", "counter", [("", store.get("hits", 0))])
        family("mt4g_store_misses_total", "counter", [("", store.get("misses", 0))])
        family("mt4g_store_stores_total", "counter", [("", store.get("stores", 0))])
        family(
            "mt4g_store_degradations_total",
            "counter",
            [(label(kind=k), v) for k, v in store.get("degradations", {}).items()],
        )
        tiers = store.get("tiers", {})
        for counter in ("hits", "misses", "stores"):
            family(
                f"mt4g_store_tier_{counter}_total",
                "counter",
                [(label(tier=t), s.get(counter, 0)) for t, s in tiers.items()],
            )
        family(
            "mt4g_store_tier_degradations_total",
            "counter",
            [
                (label(tier=t, kind=k), v)
                for t, s in tiers.items()
                for k, v in s.get("degradations", {}).items()
            ],
        )

    jobs = snapshot.get("jobs")
    if jobs is not None:
        family("mt4g_jobs_inflight", "gauge", [("", jobs.get("inflight", 0))])
        family("mt4g_jobs_open_breakers", "gauge", [("", jobs.get("open_breakers", 0))])
        family(
            "mt4g_jobs_executor_broken", "gauge", [("", jobs.get("executor_broken", 0))]
        )
        for counter in (
            "started",
            "completed",
            "failed",
            "coalesced",
            "retries",
            "deadlines_expired",
            "breaker_opens",
            "fast_failures",
            "peer_fetches",
            "peer_fallbacks",
            "pool_respawns",
            "workers_warmed",
        ):
            family(
                f"mt4g_jobs_{counter}_total", "counter", [("", jobs.get(counter, 0))]
            )

    hot = snapshot.get("hot_cache")
    if hot is not None:
        family("mt4g_hot_cache_bytes", "gauge", [("", hot.get("bytes", 0))])
        family("mt4g_hot_cache_entries", "gauge", [("", hot.get("entries", 0))])
        for counter in ("hits", "misses", "stores", "evictions", "invalidations"):
            family(
                f"mt4g_hot_cache_{counter}_total",
                "counter",
                [("", hot.get(counter, 0))],
            )

    trace = snapshot.get("trace")
    if trace is not None:
        family("mt4g_traces_held", "gauge", [("", trace.get("traces_held", 0))])
        for counter in (
            "spans_recorded",
            "spans_dropped",
            "traces_evicted",
            "slow_traces",
        ):
            family(
                f"mt4g_trace_{counter}_total", "counter", [("", trace.get(counter, 0))]
            )

    resilience = snapshot.get("resilience", {})
    family(
        "mt4g_stale_served_total", "counter", [("", resilience.get("stale_served", 0))]
    )
    family(
        "mt4g_faults_injected_total",
        "counter",
        [
            (label(site=s), v)
            for s, v in resilience.get("faults_injected", {}).items()
        ],
    )
    return "\n".join(lines) + "\n"
