"""The asyncio topology query service (stdlib only, no new deps).

:class:`TopologyService` ties the serving pieces together — the shared
:class:`~repro.cache.DiscoveryCache`, the :class:`DeviceCatalog`, the
single-flight :class:`JobQueue` and the :class:`ServiceMetrics` — behind
a deliberately small HTTP/1.1 implementation on asyncio streams: parse
one request (request line, headers, optional ``Content-Length`` body),
dispatch through :func:`repro.serve.handlers.dispatch`, write one
``Connection: close`` response.  No keep-alive, no chunking, no TLS —
a fleet-internal query service fronted by whatever proxy the deployment
already has; what matters here is that the *expensive* path (cold
discovery) is coalesced and the hot path is a hash lookup.

The transport and the routing are separable on purpose:
:meth:`TopologyService.handle_request` takes an
:class:`~repro.serve.handlers.HTTPRequest` and returns the response
without any socket involved, which is how most tests (and embedders)
drive the service.
"""

from __future__ import annotations

import asyncio
import pickle
import sys
import urllib.parse
from collections import OrderedDict
from concurrent.futures import Executor
from pathlib import Path
from time import perf_counter

from repro.cache.ring import HashRing
from repro.cache.store import DiscoveryCache
from repro.cache.tiers import (
    DEFAULT_MEMORY_BYTES,
    DEFAULT_PEER_RETRY,
    DEFAULT_PEER_TIMEOUT,
    PeerTier,
    build_worker_cache,
)
from repro.core.report import TopologyReport
from repro.faults.retry import RetryPolicy
from repro.serve.catalog import DeviceCatalog
from repro.serve.handlers import (
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    dispatch,
    error_response,
    route_label,
)
from repro.serve.jobs import JobQueue
from repro.serve.metrics import ServiceMetrics

__all__ = ["TopologyService", "run_service"]

#: Bound on request bodies (POST /discover payloads are tiny).
MAX_BODY_BYTES = 1 << 20
#: Bound on header lines: a client streaming endless headers (each
#: arriving inside the per-read timeout) must not pin a connection.
MAX_HEADER_LINES = 100
#: Per-read timeout: a stalled client must not pin a connection task.
READ_TIMEOUT_SECONDS = 30.0


class TopologyService:
    """The long-lived topology query service over one discovery store."""

    #: last-known-good reports retained for stale fallback (per report
    #: key, LRU-evicted) — a safety net, not a second cache.
    LAST_GOOD_MAX = 32

    def __init__(
        self,
        store: DiscoveryCache,
        read_only: bool = False,
        cache_config: str = "PreferL1",
        engine: str = "analytic",
        max_workers: int | None = None,
        executor: Executor | None = None,
        retry: RetryPolicy | None = None,
        deadline_seconds: float | None = None,
        failure_ttl: float = 15.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 60.0,
        prune_bytes: int | None = None,
    ) -> None:
        self.store = store
        self.read_only = read_only
        self.catalog = DeviceCatalog(store)
        self.jobs = JobQueue(
            store,
            cache_config=cache_config,
            engine=engine,
            max_workers=max_workers,
            executor=executor,
            retry=retry,
            deadline_seconds=deadline_seconds,
            failure_ttl=failure_ttl,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            proxy_only=read_only,
            prune_bytes=prune_bytes,
        )
        self.metrics = ServiceMetrics()
        #: consistent-hash membership; None until attach_ring() (post-
        #: bind, because the advertise URL may need the ephemeral port).
        self.ring: HashRing | None = None
        #: report key -> pickled last-good report (pickled so every
        #: fallback read deserialises a fresh object, exactly like a
        #: store hit — handlers may mutate what they are given).
        self._last_good: OrderedDict[str, bytes] = OrderedDict()
        self._server: asyncio.AbstractServer | None = None
        #: (host, port) actually bound; port 0 resolves on start().
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------ #
    # last-known-good fallback                                            #
    # ------------------------------------------------------------------ #

    def remember_good(self, key: str, report: TopologyReport) -> None:
        self._last_good[key] = pickle.dumps(report, pickle.HIGHEST_PROTOCOL)
        self._last_good.move_to_end(key)
        while len(self._last_good) > self.LAST_GOOD_MAX:
            self._last_good.popitem(last=False)

    def last_good(self, key: str) -> TopologyReport | None:
        blob = self._last_good.get(key)
        return pickle.loads(blob) if blob is not None else None

    # ------------------------------------------------------------------ #
    # ring membership (sharding + replication)                            #
    # ------------------------------------------------------------------ #

    def attach_ring(
        self,
        ring: HashRing,
        peer_retry: RetryPolicy | None = None,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
    ) -> None:
        """Join a consistent-hash ring: route jobs, fetch misses.

        Wires the ring into both halves of the serving stack — the job
        queue (cold keys owned elsewhere become proxy jobs) and, when
        the store is tiered, a :class:`PeerTier` appended below disk (a
        local read miss falls through to the key's peers).  Called after
        :meth:`start` so a port-0 bind can advertise its real port.
        """
        self.ring = ring
        self.jobs.ring = ring
        self.jobs.peer_retry = peer_retry if peer_retry is not None else DEFAULT_PEER_RETRY
        self.jobs.peer_timeout = peer_timeout
        add_tier = getattr(self.store, "add_tier", None)
        if add_tier is not None:
            add_tier(
                PeerTier(
                    ring,
                    retry=self.jobs.peer_retry,
                    timeout=peer_timeout,
                    version=self.store.version,
                )
            )

    def can_proxy(self, key: str) -> bool:
        """True when a cold ``key`` has a peer that might produce it."""
        return self.ring is not None and self.ring.peer_target(key) is not None

    # ------------------------------------------------------------------ #
    # request handling (transport-independent)                            #
    # ------------------------------------------------------------------ #

    async def handle_request(self, request: HTTPRequest) -> HTTPResponse:
        """Dispatch one request; never raises — errors become responses."""
        start = perf_counter()
        try:
            response = await dispatch(self, request)
        except HTTPError as exc:
            response = error_response(exc.status, exc.detail, exc.retry_after, exc.extra)
        except Exception as exc:  # a handler bug must not kill the server
            response = error_response(500, str(exc) or type(exc).__name__)
        self.metrics.observe(route_label(request), response.status, perf_counter() - start)
        return response

    # ------------------------------------------------------------------ #
    # transport                                                           #
    # ------------------------------------------------------------------ #

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.jobs.shutdown()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
        except Exception:
            # Unparseable request line / headers / truncated body: one
            # 400 and close; the failure is counted but never propagates.
            self.metrics.bad_requests += 1
            response = error_response(400, "malformed HTTP request")
            await self._write(writer, response)
            return
        if request is None:  # connection closed before a request line
            writer.close()
            return
        response = await self.handle_request(request)
        await self._write(writer, response)

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, response: HTTPResponse) -> None:
        try:
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Parse one HTTP/1.1 request off the stream (or None on EOF)."""
    line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_SECONDS)
    if not line.strip():
        return None
    method, target, _version = line.decode("ascii").split()
    headers: dict[str, str] = {}
    header_lines = 0
    while True:
        raw = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_SECONDS)
        if raw in (b"\r\n", b"\n", b""):
            break
        header_lines += 1
        if header_lines > MAX_HEADER_LINES:
            raise ValueError("too many header lines")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"unacceptable Content-Length {length}")
    if length:
        body = await asyncio.wait_for(reader.readexactly(length), READ_TIMEOUT_SECONDS)
    path, _, query_string = target.partition("?")
    query = {
        # last value wins for repeated parameters — the API has no
        # list-valued parameters (compare takes a comma list).
        name: values[-1]
        for name, values in urllib.parse.parse_qs(
            query_string, keep_blank_values=True
        ).items()
    }
    return HTTPRequest(
        method=method.upper(),
        path=urllib.parse.unquote(path),
        query=query,
        headers=headers,
        body=body,
    )


async def run_service(
    cache_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8734,
    read_only: bool = False,
    cache_config: str = "PreferL1",
    max_workers: int | None = None,
    quiet: bool = False,
    peers: "list[str] | None" = None,
    advertise: str | None = None,
    memory_limit: int = DEFAULT_MEMORY_BYTES,
    cache_limit: int | None = None,
) -> None:
    """Run the service until cancelled (the ``mt4g serve`` entry point).

    The store is the standard tier stack (memory LRU over disk;
    ``memory_limit=0`` disables the memory tier).  ``peers`` joins a
    consistent-hash ring with those instances — each must be started
    with the member list naming everyone else, and ``advertise`` is the
    URL *they* reach this instance under (default: the bound
    host:port).  ``cache_limit`` prunes the disk tier to that many
    bytes after every completed discovery.
    """
    store = build_worker_cache(
        Path(cache_dir).expanduser(), memory_bytes=memory_limit
    )
    service = TopologyService(
        store,
        read_only=read_only,
        cache_config=cache_config,
        max_workers=max_workers,
        prune_bytes=cache_limit,
    )
    bound_host, bound_port = await service.start(host, port)
    if peers:
        # After bind, so a port-0 instance advertises its real port.
        ring = HashRing(advertise or f"http://{bound_host}:{bound_port}", peers)
        service.attach_ring(ring)
    if not quiet:
        ring_note = (
            f", ring of {len(service.ring.nodes)}" if service.ring is not None else ""
        )
        print(
            f"# mt4g serve listening on http://{bound_host}:{bound_port} "
            f"(store {service.store.root}"
            f"{', read-only' if read_only else ''}{ring_note})",
            file=sys.stderr,
            flush=True,
        )
    try:
        await service.serve_forever()
    finally:
        await service.stop()
