"""The asyncio topology query service (stdlib only, no new deps).

:class:`TopologyService` ties the serving pieces together — the shared
:class:`~repro.cache.DiscoveryCache`, the :class:`DeviceCatalog`, the
single-flight :class:`JobQueue`, the :class:`HotReportCache` and the
:class:`ServiceMetrics` — behind a deliberately small HTTP/1.1
implementation on asyncio streams.

The transport speaks **persistent HTTP/1.1**: one connection serves many
requests (``Connection: keep-alive``), which is what makes the warm path
as fast as the hardware allows — a hot request costs one buffered read,
a dict lookup in the render cache, and one write, with no TCP handshake
amortised across it.  Framing is kept safe by construction:

* bodies are ``Content-Length``-bounded (no chunked uploads) and capped
  at :data:`MAX_BODY_BYTES` — an oversized declaration is a ``413`` and
  the connection closes, because the body was never drained;
* pipelined requests arriving in one TCP segment are simply buffered in
  the :class:`~asyncio.StreamReader` — the read loop consumes them one
  request at a time, responses in request order;
* an idle keep-alive connection is reaped after ``keep_alive_timeout``
  seconds (counted, never erred — idleness is normal client behaviour);
* at most ``max_requests_per_connection`` requests are served per
  connection, then the response carries ``Connection: close`` — a bound
  on how long one socket can pin a connection task;
* a client ``Connection: close`` (or an HTTP/1.0 request without
  ``keep-alive``) is honored: the response says ``close`` and means it;
* malformed requests (bad request line, header floods, truncated or
  oversized bodies) are answered with ``Connection: close`` and the
  socket drops — after a framing error the byte stream is unparseable
  by definition, so reuse would serve garbage.

Setting ``keep_alive_timeout=0`` restores the PR-5 one-request-per-
connection behaviour (the measured baseline in ``BENCH_serve.json``).

The transport and the routing are separable on purpose:
:meth:`TopologyService.handle_request` takes an
:class:`~repro.serve.handlers.HTTPRequest` and returns the response
without any socket involved, which is how most tests (and embedders)
drive the service.
"""

from __future__ import annotations

import asyncio
import pickle
import sys
import urllib.parse
from collections import OrderedDict
from concurrent.futures import Executor
from pathlib import Path
from time import perf_counter

from repro.cache.ring import HashRing
from repro.cache.store import DiscoveryCache
from repro.cache.tiers import (
    DEFAULT_MEMORY_BYTES,
    DEFAULT_PEER_RETRY,
    DEFAULT_PEER_TIMEOUT,
    PeerTier,
    build_worker_cache,
)
from repro.core.report import TopologyReport
from repro.faults.retry import RetryPolicy
from repro.obs.accesslog import AccessLog
from repro.obs.trace import CURRENT, Tracer, format_traceparent
from repro.serve.catalog import DeviceCatalog
from repro.serve.handlers import (
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    dispatch,
    error_response,
    route_label,
)
from repro.serve.hotcache import DEFAULT_HOT_CACHE_BYTES, HotReportCache
from repro.serve.jobs import JobQueue
from repro.serve.metrics import ServiceMetrics

__all__ = ["TopologyService", "run_service"]

#: Bound on request bodies (POST /discover payloads are tiny).
MAX_BODY_BYTES = 1 << 20
#: Bound on header lines: a client streaming endless headers (each
#: arriving inside the per-read timeout) must not pin a connection.
MAX_HEADER_LINES = 100
#: Per-read timeout: a stalled client must not pin a connection task.
READ_TIMEOUT_SECONDS = 30.0
#: How long an idle keep-alive connection is held open for its next
#: request before being reaped.  0 disables keep-alive entirely.
KEEP_ALIVE_TIMEOUT_SECONDS = 60.0
#: Requests served per connection before the server closes it — bounds
#: how long one socket can monopolise a connection task.
MAX_REQUESTS_PER_CONNECTION = 1000


class _PayloadTooLarge(ValueError):
    """A Content-Length beyond :data:`MAX_BODY_BYTES` (→ HTTP 413)."""


class TopologyService:
    """The long-lived topology query service over one discovery store."""

    #: last-known-good reports retained for stale fallback (per report
    #: key, LRU-evicted) — a safety net, not a second cache.
    LAST_GOOD_MAX = 32

    def __init__(
        self,
        store: DiscoveryCache,
        read_only: bool = False,
        cache_config: str = "PreferL1",
        engine: str = "analytic",
        max_workers: int | None = None,
        executor: Executor | None = None,
        retry: RetryPolicy | None = None,
        deadline_seconds: float | None = None,
        failure_ttl: float = 15.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 60.0,
        prune_bytes: int | None = None,
        keep_alive_timeout: float = KEEP_ALIVE_TIMEOUT_SECONDS,
        max_requests_per_connection: int = MAX_REQUESTS_PER_CONNECTION,
        hot_cache_bytes: int = 0,
        catalog_ttl: float = 0.0,
        pool_mode: str = "lazy",
        trace: bool = False,
        trace_max: int = 512,
        trace_slow_ms: float | None = None,
        log_format: str | None = None,
        log_stream=None,
    ) -> None:
        self.store = store
        self.read_only = read_only
        #: 0 disables keep-alive (the PR-5 Connection: close behaviour);
        #: the ``mt4g serve`` entry point defaults it on.
        self.keep_alive_timeout = float(keep_alive_timeout)
        self.max_requests_per_connection = max(1, int(max_requests_per_connection))
        self.catalog = DeviceCatalog(store, ttl=catalog_ttl)
        self.jobs = JobQueue(
            store,
            cache_config=cache_config,
            engine=engine,
            max_workers=max_workers,
            executor=executor,
            retry=retry,
            deadline_seconds=deadline_seconds,
            failure_ttl=failure_ttl,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            proxy_only=read_only,
            prune_bytes=prune_bytes,
            pool_mode=pool_mode,
            on_entry_landed=self._entry_landed,
        )
        self.metrics = ServiceMetrics()
        #: per-service span ring (None = tracing off, the default; the
        #: request path then pays a single attribute check).  Per-service
        #: rather than module-global: replicated tests run two instances
        #: in one process, each with its own ring.
        self.tracer: Tracer | None = (
            Tracer(max_traces=trace_max, slow_ms=trace_slow_ms, log_stream=log_stream)
            if trace
            else None
        )
        self.jobs.tracer = self.tracer
        #: structured per-request access log (None = off, the default).
        self.access_log: AccessLog | None = (
            AccessLog(log_format, stream=log_stream) if log_format else None
        )
        #: pre-rendered response bytes per (report key, format) — the
        #: warm read path; None when disabled (``hot_cache_bytes=0``).
        self.hot_cache: HotReportCache | None = (
            HotReportCache(hot_cache_bytes) if hot_cache_bytes > 0 else None
        )
        #: consistent-hash membership; None until attach_ring() (post-
        #: bind, because the advertise URL may need the ephemeral port).
        self.ring: HashRing | None = None
        #: report key -> pickled last-good report (pickled so every
        #: fallback read deserialises a fresh object, exactly like a
        #: store hit — handlers may mutate what they are given).
        self._last_good: OrderedDict[str, bytes] = OrderedDict()
        self._server: asyncio.AbstractServer | None = None
        #: (host, port) actually bound; port 0 resolves on start().
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------ #
    # store-write invalidation                                            #
    # ------------------------------------------------------------------ #

    def _entry_landed(self, key: str) -> None:
        """A discovery (or proxied fetch) landed ``key`` in the store.

        Keys are content-addressed, so rendered bytes for a key can
        never silently change — the invalidation is healing hygiene
        (a re-landed entry after store corruption repairs, not refreshes,
        the render) plus the catalog's cue that the device list grew.
        """
        if self.hot_cache is not None:
            self.hot_cache.invalidate(key)
        self.catalog.invalidate()

    # ------------------------------------------------------------------ #
    # last-known-good fallback                                            #
    # ------------------------------------------------------------------ #

    def remember_good(self, key: str, report: TopologyReport) -> None:
        self._last_good[key] = pickle.dumps(report, pickle.HIGHEST_PROTOCOL)
        self._last_good.move_to_end(key)
        while len(self._last_good) > self.LAST_GOOD_MAX:
            self._last_good.popitem(last=False)

    def last_good(self, key: str) -> TopologyReport | None:
        blob = self._last_good.get(key)
        return pickle.loads(blob) if blob is not None else None

    # ------------------------------------------------------------------ #
    # ring membership (sharding + replication)                            #
    # ------------------------------------------------------------------ #

    def attach_ring(
        self,
        ring: HashRing,
        peer_retry: RetryPolicy | None = None,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
    ) -> None:
        """Join a consistent-hash ring: route jobs, fetch misses.

        Wires the ring into both halves of the serving stack — the job
        queue (cold keys owned elsewhere become proxy jobs) and, when
        the store is tiered, a :class:`PeerTier` appended below disk (a
        local read miss falls through to the key's peers).  Called after
        :meth:`start` so a port-0 bind can advertise its real port.
        """
        self.ring = ring
        self.jobs.ring = ring
        self.jobs.peer_retry = peer_retry if peer_retry is not None else DEFAULT_PEER_RETRY
        self.jobs.peer_timeout = peer_timeout
        add_tier = getattr(self.store, "add_tier", None)
        if add_tier is not None:
            add_tier(
                PeerTier(
                    ring,
                    retry=self.jobs.peer_retry,
                    timeout=peer_timeout,
                    version=self.store.version,
                )
            )

    def can_proxy(self, key: str) -> bool:
        """True when a cold ``key`` has a peer that might produce it."""
        return self.ring is not None and self.ring.peer_target(key) is not None

    # ------------------------------------------------------------------ #
    # request handling (transport-independent)                            #
    # ------------------------------------------------------------------ #

    async def handle_request(self, request: HTTPRequest) -> HTTPResponse:
        """Dispatch one request; never raises — errors become responses.

        With tracing on, the whole dispatch runs under a root span
        context (continued from an incoming ``traceparent`` when one is
        sent) and every response carries ``X-MT4G-Request-Id`` and the
        outbound ``traceparent``.
        """
        start = perf_counter()
        tracer = self.tracer
        token = None
        if tracer is not None:
            ctx = tracer.begin(request.headers.get("traceparent"))
            token = CURRENT.set(ctx)
        try:
            response = await dispatch(self, request)
        except HTTPError as exc:
            response = error_response(exc.status, exc.detail, exc.retry_after, exc.extra)
        except Exception as exc:  # a handler bug must not kill the server
            response = error_response(500, str(exc) or type(exc).__name__)
        finally:
            if token is not None:
                CURRENT.reset(token)
        route = route_label(request)
        elapsed = perf_counter() - start
        self.metrics.observe(route, response.status, elapsed)
        if tracer is not None:
            tracer.finish_request(ctx, route, start, response.status, elapsed)
            response.headers["X-MT4G-Request-Id"] = ctx.trace_id
            response.headers["traceparent"] = format_traceparent(
                ctx.trace_id, ctx.span_id
            )
        return response

    # ------------------------------------------------------------------ #
    # transport                                                           #
    # ------------------------------------------------------------------ #

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port).

        With ``pool_mode="warm"`` on a writable instance the discovery
        pool is created and pre-warmed here — workers pay their import
        and tier-stack cost before the first cold request, not during it.
        """
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if self.jobs.pool_mode == "warm" and not self.read_only:
            # Read-only replicas only ever run cheap proxy fetches — a
            # pre-spawned process pool would be idle weight there.
            self.jobs.prewarm()
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.jobs.shutdown()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection's request loop: read, dispatch, write, repeat.

        The loop ends when the client closes, asks to close, idles past
        the keep-alive window, exceeds the per-connection request cap,
        or sends something unparseable (framing errors always close —
        the stream position is unknowable afterwards).
        """
        metrics = self.metrics
        log = self.access_log
        metrics.count_connection("accepted")
        served = 0
        try:
            while True:
                # The *first* request gets the ordinary read timeout; a
                # *reused* connection waits out the keep-alive window.
                first_read = (
                    READ_TIMEOUT_SECONDS
                    if served == 0
                    else max(self.keep_alive_timeout, 0.001)
                )
                try:
                    request = await _read_request(reader, first_read)
                except _PayloadTooLarge as exc:
                    # The body was never drained: the connection cannot
                    # be reused, and the client is told so explicitly.
                    metrics.count_bad_request()
                    if log is not None:
                        log.event("bad_request", str(exc), status=413)
                    await self._write(writer, error_response(413, str(exc)), close=True)
                    return
                except TimeoutError:
                    if served:
                        # An idle keep-alive socket timing out is the
                        # normal end of a connection's life, not an error.
                        metrics.count_connection("idle_reaped")
                        return
                    metrics.count_bad_request()
                    if log is not None:
                        log.event("bad_request", "read timed out", status=400)
                    await self._write(
                        writer, error_response(400, "malformed HTTP request"), close=True
                    )
                    return
                except Exception as exc:
                    # Unparseable request line / headers / truncated
                    # body: one 400 with Connection: close — after a
                    # framing error the stream is garbage by definition.
                    metrics.count_bad_request()
                    if log is not None:
                        log.event(
                            "bad_request",
                            str(exc) or type(exc).__name__,
                            status=400,
                        )
                    await self._write(
                        writer, error_response(400, "malformed HTTP request"), close=True
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                if served:
                    metrics.count_connection("reused")
                served += 1
                request_start = perf_counter()
                response = await self.handle_request(request)
                if log is not None:
                    log.request(
                        method=request.method,
                        path=request.path,
                        route=route_label(request),
                        status=response.status,
                        duration_ms=(perf_counter() - request_start) * 1e3,
                        trace_id=response.headers.get("X-MT4G-Request-Id", ""),
                        reused=served > 1,
                    )
                close = (
                    self.keep_alive_timeout <= 0
                    or served >= self.max_requests_per_connection
                    or response.status >= 500
                    or _wants_close(request)
                )
                if not await self._write(writer, response, close=close) or close:
                    return
        finally:
            metrics.count_connection("closed")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, response: HTTPResponse, close: bool
    ) -> bool:
        """Write one response; False when the client went away mid-write.

        Write failures are *counted* (``connections.write_errors``) —
        a client hanging up mid-response is survivable, but a rate of
        them is a signal an operator needs to see in ``/metrics`` —
        and, when the access log is on, logged with their reason.
        """
        try:
            writer.write(response.encode(close=close))
            await writer.drain()
            return True
        except (ConnectionError, OSError) as exc:
            self.metrics.count_connection("write_errors")
            if self.access_log is not None:
                self.access_log.event(
                    "write_error",
                    str(exc) or type(exc).__name__,
                    status=response.status,
                )
            return False


def _wants_close(request: HTTPRequest) -> bool:
    """Did the client ask for this to be the connection's last response?

    HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
    HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
    """
    tokens = {
        token.strip().lower()
        for token in request.headers.get("connection", "").split(",")
    }
    if request.version == "HTTP/1.0":
        return "keep-alive" not in tokens
    return "close" in tokens


async def _read_request(
    reader: asyncio.StreamReader,
    first_read_timeout: float = READ_TIMEOUT_SECONDS,
) -> HTTPRequest | None:
    """Parse one HTTP/1.1 request off the stream (or None on EOF).

    ``first_read_timeout`` bounds the wait for the *request line* — the
    keep-alive idle window on a reused connection; once a request has
    started arriving, the ordinary per-read timeout applies to headers
    and body so a trickling client cannot pin the connection task.
    """
    line = await asyncio.wait_for(reader.readline(), first_read_timeout)
    if not line.strip():
        return None
    method, target, version = line.decode("ascii").split()
    headers: dict[str, str] = {}
    header_lines = 0
    while True:
        raw = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_SECONDS)
        if raw in (b"\r\n", b"\n", b""):
            break
        header_lines += 1
        if header_lines > MAX_HEADER_LINES:
            raise ValueError("too many header lines")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length < 0:
        raise ValueError(f"unacceptable Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise _PayloadTooLarge(
            f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )
    if length:
        body = await asyncio.wait_for(reader.readexactly(length), READ_TIMEOUT_SECONDS)
    path, _, query_string = target.partition("?")
    query = {
        # last value wins for repeated parameters — the API has no
        # list-valued parameters (compare takes a comma list).
        name: values[-1]
        for name, values in urllib.parse.parse_qs(
            query_string, keep_blank_values=True
        ).items()
    }
    return HTTPRequest(
        method=method.upper(),
        path=urllib.parse.unquote(path),
        query=query,
        headers=headers,
        body=body,
        version=version.upper(),
    )


async def run_service(
    cache_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8734,
    read_only: bool = False,
    cache_config: str = "PreferL1",
    max_workers: int | None = None,
    quiet: bool = False,
    peers: "list[str] | None" = None,
    advertise: str | None = None,
    memory_limit: int = DEFAULT_MEMORY_BYTES,
    cache_limit: int | None = None,
    keep_alive_timeout: float = KEEP_ALIVE_TIMEOUT_SECONDS,
    hot_cache_bytes: int = DEFAULT_HOT_CACHE_BYTES,
    catalog_ttl: float = 2.0,
    pool_mode: str = "warm",
    trace: bool = False,
    trace_slow_ms: float | None = None,
    log_format: str | None = None,
) -> None:
    """Run the service until cancelled (the ``mt4g serve`` entry point).

    The store is the standard tier stack (memory LRU over disk;
    ``memory_limit=0`` disables the memory tier).  ``peers`` joins a
    consistent-hash ring with those instances — each must be started
    with the member list naming everyone else, and ``advertise`` is the
    URL *they* reach this instance under (default: the bound
    host:port).  ``cache_limit`` prunes the disk tier to that many
    bytes after every completed discovery.

    Unlike the embeddable :class:`TopologyService` (which defaults
    every optimisation off for test determinism), the entry point runs
    the full hot path by default: keep-alive connections, the
    pre-rendered hot-report cache, a short-TTL catalog snapshot, and a
    pre-warmed persistent discovery pool.
    """
    store = build_worker_cache(
        Path(cache_dir).expanduser(), memory_bytes=memory_limit
    )
    service = TopologyService(
        store,
        read_only=read_only,
        cache_config=cache_config,
        max_workers=max_workers,
        prune_bytes=cache_limit,
        keep_alive_timeout=keep_alive_timeout,
        hot_cache_bytes=hot_cache_bytes,
        catalog_ttl=catalog_ttl,
        pool_mode=pool_mode,
        trace=trace,
        trace_slow_ms=trace_slow_ms,
        log_format=log_format,
    )
    bound_host, bound_port = await service.start(host, port)
    if peers:
        # After bind, so a port-0 instance advertises its real port.
        ring = HashRing(advertise or f"http://{bound_host}:{bound_port}", peers)
        service.attach_ring(ring)
    if not quiet:
        ring_note = (
            f", ring of {len(service.ring.nodes)}" if service.ring is not None else ""
        )
        keep_note = (
            f"keep-alive {service.keep_alive_timeout:g}s"
            if service.keep_alive_timeout > 0
            else "keep-alive off"
        )
        trace_note = ", tracing on" if service.tracer is not None else ""
        print(
            f"# mt4g serve listening on http://{bound_host}:{bound_port} "
            f"(store {service.store.root}"
            f"{', read-only' if read_only else ''}{ring_note}, {keep_note}"
            f"{trace_note})",
            file=sys.stderr,
            flush=True,
        )
    try:
        await service.serve_forever()
    finally:
        await service.stop()
