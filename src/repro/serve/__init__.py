"""Topology serving subsystem: catalog + async HTTP query service.

The paper's Section VI consumers (performance models, GPUscout,
sys-sage) need *programmatic, repeated* access to topology reports — and
the ROADMAP's north star asks for a system that serves heavy traffic.
This package turns the content-addressed :class:`~repro.cache.
DiscoveryCache` plus the fleet machinery into that long-lived service:

* :mod:`repro.serve.catalog` — the device registry over the store
  (enumerate cached discoveries with metadata, filter by attribute);
* :mod:`repro.serve.server` / :mod:`repro.serve.handlers` — the
  stdlib-asyncio HTTP API (``/devices``, report format negotiation,
  ``/compare`` with the fleet judge, ``/diff`` drift detection with a
  graph-keyed ``?view=graph``, ``/graph`` canonical topology graphs,
  ``/discover`` + ``/jobs``, ``/healthz``, ``/metrics``);
* :mod:`repro.serve.jobs` — the single-flight discovery queue: N
  concurrent cold requests for one (preset, config, seed) cost exactly
  one discovery, admitted longest-first into the worker pool; with a
  consistent-hash ring attached, keys owned by another instance proxy
  there (``fetch_report_for_job``) so the stampede protection holds
  across the whole serving fleet;
* :mod:`repro.serve.diff` — structural report-diff with tolerance
  classification (jitter vs drift);
* :mod:`repro.serve.hotcache` — the hot-report render cache: a
  byte-bounded LRU of *pre-rendered response bytes* keyed
  ``(report_key, format)``, safe by content-addressing, making a warm
  keep-alive report read a dict lookup plus a socket write;
* :mod:`repro.serve.metrics` — hit/miss/inflight/latency counters, per
  tier on a tiered store, plus connection-lifecycle and hot-cache
  counters; JSON and Prometheus text exposition.

Instances serve the stack of :mod:`repro.cache.tiers` (memory LRU →
disk → ring peers): ``mt4g serve --peers`` shards the keyspace, and
read-only ``--no-discover`` replicas pull misses from the owning
writable peer over ``GET /store/{key}`` instead of 404ing.

Entry point: ``mt4g serve`` (see :mod:`repro.core.cli`).
"""

from repro.serve.catalog import CatalogEntry, DeviceCatalog
from repro.serve.diff import AttributeDelta, ReportDiff, diff_reports
from repro.serve.handlers import HTTPError, HTTPRequest, HTTPResponse
from repro.serve.hotcache import HotReportCache
from repro.serve.jobs import DiscoveryJob, JobQueue, fetch_report_for_job
from repro.serve.metrics import ServiceMetrics, to_prometheus
from repro.serve.server import TopologyService, run_service

__all__ = [
    "AttributeDelta",
    "CatalogEntry",
    "DeviceCatalog",
    "DiscoveryJob",
    "HTTPError",
    "HTTPRequest",
    "HTTPResponse",
    "HotReportCache",
    "JobQueue",
    "ReportDiff",
    "ServiceMetrics",
    "TopologyService",
    "diff_reports",
    "fetch_report_for_job",
    "run_service",
    "to_prometheus",
]
