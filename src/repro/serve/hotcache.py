"""Hot-report render cache: pre-rendered response bytes above the store.

The tiered store (PR 7) already makes a warm report read cheap — a
memory-tier hit instead of disk I/O — but every ``GET
/devices/{preset}/report`` still *unpickled* a full
:class:`~repro.core.report.TopologyReport` and re-ran a writer
(json/markdown/csv) over it, and every ``GET /graph/{preset}`` rebuilt
and re-serialised the canonical graph.  For a service sitting on a hot
path, that is the whole request cost.

:class:`HotReportCache` removes it: a byte-bounded LRU keyed
``(report_key, kind)`` holding the *final response bytes* (plus their
content type) per rendered format.  A warm request becomes a dict
lookup and a socket write — no unpickle, no renderer.

Why this is safe: report keys are **content-addressed** (the SHA-256 of
everything result-determining, PR 4), so the bytes rendered for a key
can never legitimately change — a hit is never stale by construction,
which is also why served bytes stay byte-identical to
``mt4g --no-cache -j`` (CI-pinned).  The cache is still invalidated
whenever a discovery lands an entry for its key
(:meth:`~repro.serve.server.TopologyService._entry_landed`): not to
refresh content, but as healing hygiene — a re-landed entry after
store-corruption self-repair drops any render made from the damaged
read path.

Stale fallback responses (``X-MT4G-Stale``) are never cached: staleness
must be re-evaluated — and re-marked — on every request.

The cache is event-loop-confined (handlers touch it on the loop
thread), so it needs no locks; counters feed ``GET /metrics``.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Any

from repro.obs import trace as _trace

__all__ = ["DEFAULT_HOT_CACHE_BYTES", "HotReportCache"]

#: Default byte budget for pre-rendered responses (``mt4g serve
#: --hot-cache-bytes`` overrides; 0 disables).  Reports render to tens
#: of KiB, so the default holds on the order of a thousand renders.
DEFAULT_HOT_CACHE_BYTES = 64 << 20


class HotReportCache:
    """Byte-bounded LRU of pre-rendered response bodies.

    >>> cache = HotReportCache(max_bytes=1 << 20)
    >>> cache.put("a" * 64, "report:json", b'{"x": 1}\\n', "application/json")
    True
    >>> cache.get("a" * 64, "report:json")
    (b'{"x": 1}\\n', 'application/json')
    >>> cache.get("a" * 64, "report:csv") is None
    True
    """

    def __init__(self, max_bytes: int = DEFAULT_HOT_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        #: (report key, render kind) -> (body bytes, content type).
        self._entries: "OrderedDict[tuple[str, str], tuple[bytes, str]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def get(self, key: str, kind: str) -> "tuple[bytes, str] | None":
        """The rendered ``(body, content_type)`` for ``(key, kind)``."""
        ctx = _trace.CURRENT.get()  # None = tracing off: no other cost
        start = perf_counter() if ctx is not None else 0.0
        entry = self._entries.get((key, kind))
        if entry is None:
            self.misses += 1
            if ctx is not None:
                _trace.record(
                    ctx, "hotcache.lookup", start, outcome="miss", kind=kind
                )
            return None
        self._entries.move_to_end((key, kind))
        self.hits += 1
        if ctx is not None:
            _trace.record(ctx, "hotcache.lookup", start, outcome="hit", kind=kind)
        return entry

    def put(self, key: str, kind: str, body: bytes, content_type: str) -> bool:
        """Cache one rendered response; evict LRU renders past the budget.

        A body larger than the whole budget is refused (it would evict
        everything for one entry that itself cannot stay).
        """
        if self.max_bytes <= 0 or len(body) > self.max_bytes:
            return False
        self._drop((key, kind))
        self._entries[(key, kind)] = (body, content_type)
        self._bytes += len(body)
        while self._bytes > self.max_bytes and self._entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1
        self.stores += 1
        return True

    def invalidate(self, key: str) -> int:
        """Drop every rendered format of ``key``; returns renders dropped."""
        doomed = [entry for entry in self._entries if entry[0] == key]
        for entry in doomed:
            self._drop(entry)
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def _drop(self, entry: "tuple[str, str]") -> None:
        existing = self._entries.pop(entry, None)
        if existing is not None:
            self._bytes -= len(existing[0])

    def stats(self) -> dict[str, Any]:
        """The ``GET /metrics`` payload fragment for this cache."""
        return {
            "max_bytes": self.max_bytes,
            "bytes": self._bytes,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
