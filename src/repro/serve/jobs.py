"""Single-flight discovery queue: N cold requests, one discovery.

The load-shedding primitive that makes serving heavy traffic honest.  A
cold request (no cache entry for its content-addressed report key) must
trigger a discovery — but when eight clients ask for the same uncached
(preset, config, seed) at once, running eight identical discoveries
would multiply the most expensive operation the system has by the
request rate.  The queue keys every in-flight job by the *report cache
key* (the same SHA-256 identity the store uses), so concurrent requests
for one identity coalesce onto one job: one worker measures, writes the
entry into the shared store, and every waiter then reads the identical
bytes back out.

Jobs run the fleet's worker body (:func:`repro.validate.fleet.discover_one`)
in an executor — a process pool by default, because discovery is
CPU-bound numpy work — and admission is LPT-aware like the fleet
schedule: when more jobs are pending than pool slots, the longest
estimated job starts first (recorded walls from the store's sidecar,
spec-derived estimates for unseen presets), so a burst's makespan
approaches the LPT bound instead of depending on arrival order.

Coalescing applies only to jobs still in flight (queued/running): a
finished job's result lives in the store, so a later request for the
same key is a plain cache hit and never reaches the queue; a failed
job is retried by the next request rather than pinning the failure.

Failure containment (the resilience half of the queue): jobs run under
the serve :class:`~repro.faults.retry.RetryPolicy` (in-worker retries of
transient failures) and an optional per-job deadline enforced on the
loop (``call_later`` — the pool slot is not freed early, the job is just
marked terminal and a late result ignored).  A key that keeps failing is
*memoised* for ``failure_ttl`` seconds — repeat cold requests fast-fail
with a ``retry_after`` hint instead of re-running a doomed discovery —
and after ``breaker_threshold`` consecutive failures the key's circuit
breaker opens for ``breaker_cooldown`` seconds.  One probe is admitted
once the window lapses (half-open); success heals the key entirely.

Cross-instance single-flight (the sharded-fleet extension): with a
consistent-hash ``ring`` attached, a cold key whose ring owner is
*another* instance is not discovered here — the job becomes a **proxy**
(:func:`fetch_report_for_job`): one bounded HTTP fetch against the
owner's ``GET /store/{key}?discover=1`` route, which rides the *owner's*
single-flight queue.  N cold requests across N instances therefore
coalesce twice — locally onto one proxy job per instance, and at the
owner onto exactly one discovery.  The fetched entry lands in the local
store (byte-identical, it is the owner's disk blob), so every local
waiter reads it back exactly like a locally-discovered one.  On a
*writable* instance a failed proxy falls back to one local discovery
(counted in ``peer_fallbacks``) — a dead owner degrades to extra work,
never to an outage; with ``proxy_only`` (read-only replicas) the proxy
result is final.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from statistics import median
from typing import Any

from repro import faults
from repro.cache.costs import estimate_discovery_cost
from repro.cache.ring import HashRing
from repro.cache.store import DiscoveryCache
from repro.cache.tiers import (
    DEFAULT_PEER_RETRY,
    DEFAULT_PEER_TIMEOUT,
    build_worker_cache,
    peer_fetch,
)
from repro.core.tool import AMD_ELEMENTS, NVIDIA_ELEMENTS
from repro.errors import is_transient
from repro.faults.retry import DEFAULT_SERVE_RETRY, RetryPolicy
from repro.obs import trace as _trace
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.presets import get_preset
from repro.gpuspec.spec import Vendor
from repro.pchase.config import PChaseConfig
from repro.validate.fleet import WorkerOutcome, discover_one

__all__ = ["DiscoveryJob", "JobQueue", "fetch_report_for_job"]


def _warm_worker(cache_dir: str) -> int:
    """Worker-pool warmup body: pay the cold-start costs before traffic.

    Run once per pool slot at service start (``--pool warm``): executing
    this in a child forces the worker process to exist *now* and to have
    imported this module — numpy and the whole discovery stack — and
    :func:`build_worker_cache` exercises the tier-stack construction and
    the store's directory scaffolding that
    :func:`~repro.validate.fleet.discover_one` performs per job, so the
    first real discovery a worker runs pays none of the cold-start tax.
    Returns the worker PID purely as something observable for tests.
    """
    build_worker_cache(cache_dir)
    return os.getpid()


def fetch_report_for_job(
    owner: str,
    key: str,
    preset: str,
    seed: int,
    cache_config: str,
    engine: str,
    validate: bool,
    cache_dir: str,
    retry: RetryPolicy | None = None,
    timeout: float = DEFAULT_PEER_TIMEOUT,
    traceparent: str | None = None,
) -> WorkerOutcome:
    """Proxy worker body: pull (or trigger) the entry at the key's owner.

    ``traceparent`` (when tracing is on) parents this worker's spans to
    the submitting job span and rides the HTTP hop as a header, so the
    owner's handler continues the same trace; the recorded spans come
    back in ``WorkerOutcome.spans`` for the queue to ingest.

    The proxy counterpart of :func:`repro.validate.fleet.discover_one`,
    with the identical :class:`WorkerOutcome` contract so ``_finish``
    cannot tell the two apart.  ``GET {owner}/store/{key}?discover=1``
    asks the owner to serve its disk blob — producing it through its own
    single-flight queue first if the key is cold there — and the blob
    then lands in the *local* store via the validating
    ``put_blob`` path: byte-for-byte the owner's entry, so the waiters
    reading it back get bytes identical to a local discovery.

    Failure taxonomy mirrors the worker's: transport errors and 5xx are
    ``transient`` (the queue's writable-instance fallback then runs the
    discovery locally); a structured 404 from a *read-only* owner is
    ``permanent`` for the proxy path (that owner can never produce the
    entry), while a 404 without the marker stays ``transient``.
    """
    if traceparent is None:
        return _fetch_report_for_job(
            owner, key, preset, seed, cache_config, engine, validate,
            cache_dir, retry, timeout,
        )
    with _trace.worker_trace(traceparent) as ctx:
        start = time.perf_counter()
        outcome = _fetch_report_for_job(
            owner, key, preset, seed, cache_config, engine, validate,
            cache_dir, retry, timeout,
        )
        if ctx is not None:
            _trace.complete(
                ctx,
                "worker.proxy_fetch",
                start,
                preset=preset,
                owner=owner,
                attempts=outcome.attempts,
                ok=outcome.ok,
                error_kind=outcome.error_kind,
            )
            outcome.spans = ctx.tracer.drain()
        return outcome


def _fetch_report_for_job(
    owner: str,
    key: str,
    preset: str,
    seed: int,
    cache_config: str,
    engine: str,
    validate: bool,
    cache_dir: str,
    retry: RetryPolicy | None = None,
    timeout: float = DEFAULT_PEER_TIMEOUT,
) -> WorkerOutcome:
    policy = retry if retry is not None else DEFAULT_PEER_RETRY
    ctx = _trace.CURRENT.get()
    start = time.perf_counter()
    error, kind = "", "transient"
    attempt = 0
    while attempt < policy.attempts:
        attempt += 1
        attempt_start = time.perf_counter() if ctx is not None else 0.0
        try:
            # Chaos point shared with the read-path peer tier: one site
            # covers every HTTP hop toward a peer.
            faults.inject("tier.peer", owner)
            status, body = peer_fetch(
                owner,
                key,
                timeout=timeout,
                discover=True,
                preset=preset,
                seed=seed,
                validate=validate,
            )
        except Exception as exc:
            error = f"peer fetch from {owner} failed: {str(exc) or type(exc).__name__}"
            kind = "transient" if is_transient(exc) else "permanent"
            retrying = kind != "permanent" and attempt < policy.attempts
            backoff = policy.delay(key, attempt - 1) if retrying else 0.0
            if ctx is not None:
                _trace.record(
                    ctx,
                    "proxy.attempt",
                    attempt_start,
                    attempt=attempt,
                    outcome="transport-error",
                    backoff_s=round(backoff, 6),
                )
            if not retrying:
                break
            time.sleep(backoff)
            continue
        if ctx is not None:
            _trace.record(
                ctx, "proxy.attempt", attempt_start, attempt=attempt, status=status
            )
        if status == 200:
            store = build_worker_cache(cache_dir)
            if not store.put_blob(key, body):
                # Truncated in flight (or forged): treat like any other
                # flaky transfer and retry within budget.
                error = f"peer blob from {owner} failed validation"
                kind = "transient"
                if attempt >= policy.attempts:
                    break
                time.sleep(policy.delay(key, attempt - 1))
                continue
            payload = store.get(key, peer=False)
            report = payload.get("report") if isinstance(payload, dict) else None
            if report is None:
                error = f"peer entry from {owner} holds no report payload"
                kind = "permanent"
                break
            return WorkerOutcome(
                preset, report, time.perf_counter() - start, attempts=attempt
            )
        if status == 404:
            read_only = False
            try:
                detail = json.loads(body.decode("utf-8"))
                read_only = bool(detail.get("read_only"))
            except Exception:
                pass
            if read_only:
                error = f"owner {owner} is read-only and has no entry for {preset}"
                kind = "permanent"
            else:
                error = f"owner {owner} has no entry for {preset}"
                kind = "transient"
            break  # a discover=1 404 is authoritative; retrying is noise
        error = f"peer {owner} answered HTTP {status}"
        kind = "transient"
        if attempt >= policy.attempts:
            break
        time.sleep(policy.delay(key, attempt - 1))
    return WorkerOutcome(
        preset,
        None,
        time.perf_counter() - start,
        error=error,
        error_kind=kind,
        attempts=attempt,
    )


@dataclass
class DiscoveryJob:
    """One coalesced discovery: many requests, one measurement."""

    id: str
    key: str
    preset: str
    seed: int
    validate: bool
    status: str = "queued"  # queued | running | done | error
    error: str = ""
    #: failure taxonomy, mirroring the fleet's: "" | "transient" |
    #: "permanent" | "deadline" | "infrastructure" | "unavailable"
    #: (fast-failed by the failure memo) | "breaker" (circuit open).
    error_kind: str = ""
    #: worker attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: seconds until a retry is worth sending (fast-failed jobs only) —
    #: surfaced to clients as a ``Retry-After`` header.
    retry_after: float | None = None
    #: how many requests this job serves (1 + coalesced arrivals).
    requests: int = 1
    #: LPT admission cost (recorded wall or calibrated estimate).
    cost: float = 0.0
    wall_seconds: float = 0.0
    #: True while this job is a peer fetch against the key's ring owner
    #: rather than a local discovery.
    proxied: bool = False
    #: set when a failed proxy was re-queued as a local discovery (the
    #: writable-instance fallback) — routing must not proxy it again.
    force_local: bool = False
    #: span context for the job's own span (tracing only): trace id,
    #: a pre-allocated span id workers parent to, and the submitting
    #: request's span id — None when tracing was off at submit.
    trace_ctx: Any = field(default=None, repr=False)
    #: monotonic stamp of submit(), for the admission-wait span attr.
    submitted_at: float = field(default_factory=time.perf_counter, repr=False)
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def as_dict(self) -> dict[str, Any]:
        out = {
            "id": self.id,
            "key": self.key,
            "preset": self.preset,
            "seed": self.seed,
            "validate": self.validate,
            "status": self.status,
            "error": self.error,
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 3),
        }
        if self.error_kind:
            out["error_kind"] = self.error_kind
        if self.attempts > 1:
            out["attempts"] = self.attempts
        if self.retry_after is not None:
            out["retry_after"] = round(self.retry_after, 3)
        if self.proxied or self.force_local:
            out["proxied"] = self.proxied
        return out


class JobQueue:
    """Single-flight background discoveries over one shared store.

    ``executor`` defaults to a lazily-created :class:`ProcessPoolExecutor`
    (real parallelism for CPU-bound discovery); tests inject a thread
    pool to keep everything in-process.  All public methods must run on
    the event-loop thread — the queue's bookkeeping is loop-confined and
    needs no locks.
    """

    #: Terminal (done/error) jobs retained for ``GET /jobs/{id}``; past
    #: this the oldest are evicted, so a long-lived service sweeping
    #: seeds cannot grow the job table without bound.
    MAX_TERMINAL_JOBS = 256

    def __init__(
        self,
        store: DiscoveryCache,
        cache_config: str = "PreferL1",
        engine: str = "analytic",
        max_workers: int | None = None,
        executor: Executor | None = None,
        retry: RetryPolicy | None = None,
        deadline_seconds: float | None = None,
        failure_ttl: float = 15.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 60.0,
        ring: HashRing | None = None,
        peer_retry: RetryPolicy | None = None,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
        proxy_only: bool = False,
        prune_bytes: int | None = None,
        pool_mode: str = "lazy",
        executor_factory=None,
        on_entry_landed=None,
    ) -> None:
        self.store = store
        self.cache_config = cache_config
        self.engine = engine
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self._executor = executor
        self._owns_executor = executor is None
        #: "warm": the service calls :meth:`prewarm` at start (pool and
        #: worker imports paid before traffic) and a respawned pool is
        #: re-warmed; "lazy": the pre-PR-9 behaviour, pool created on
        #: first use.  Either way the pool persists across jobs.
        if pool_mode not in ("warm", "lazy"):
            raise ValueError(f"pool_mode must be 'warm' or 'lazy', not {pool_mode!r}")
        self.pool_mode = pool_mode
        #: how an owned executor is (re)built — injectable so tests can
        #: watch respawns without paying real process-pool spin-up.
        self._executor_factory = executor_factory
        #: called with the report key after a completed job lands its
        #: entry — the service hangs hot-cache/catalog invalidation here.
        self.on_entry_landed = on_entry_landed
        self._rewarm_pending = False
        #: (preset, seed, validate) -> content-addressed report key.
        #: Key derivation builds a SimulatedGPU and canonicalises the
        #: whole identity dict through SHA-256 — pure, but far too slow
        #: for a per-request hot path, hence this bounded memo.
        self._key_memo: "OrderedDict[tuple[str, int, bool], str]" = OrderedDict()
        self.retry = retry if retry is not None else DEFAULT_SERVE_RETRY
        #: key routing across instances; None = standalone (every job
        #: discovers locally, the pre-ring behaviour).
        self.ring = ring
        self.peer_retry = peer_retry if peer_retry is not None else DEFAULT_PEER_RETRY
        self.peer_timeout = peer_timeout
        #: read-only replicas: never discover locally — a failed proxy
        #: is final instead of falling back to a local discovery.
        self.proxy_only = proxy_only
        #: disk budget applied (off-loop) after each completed job; None
        #: leaves pruning to the CLI, the pre---cache-limit behaviour.
        self.prune_bytes = prune_bytes
        #: per-job wall budget, enforced on the loop (None = unbounded).
        self.deadline_seconds = deadline_seconds
        #: how long a failed key fast-fails before a retry is admitted.
        self.failure_ttl = failure_ttl
        #: consecutive failures that open a key's circuit breaker…
        self.breaker_threshold = max(1, breaker_threshold)
        #: …and how long the breaker stays open.
        self.breaker_cooldown = breaker_cooldown
        self._jobs: dict[str, DiscoveryJob] = {}
        self._by_key: dict[str, DiscoveryJob] = {}
        self._pending: list[DiscoveryJob] = []
        self._terminal: deque[str] = deque()
        self._running = 0
        self._ids = itertools.count(1)
        #: key -> failure memo: consecutive failures, monotonic
        #: blocked-until, breaker state, last error (kind + message).
        self._key_health: dict[str, dict[str, Any]] = {}
        self._deadline_handles: dict[str, asyncio.TimerHandle] = {}
        #: single-flight accounting (the acceptance counters).
        self.discoveries_started = 0
        self.discoveries_completed = 0
        self.discoveries_failed = 0
        self.coalesced = 0
        #: fault-tolerance accounting (the resilience counters).
        self.retries_total = 0
        self.deadlines_expired = 0
        self.breaker_opens = 0
        self.fast_failures = 0
        #: sharding accounting: jobs dispatched as peer fetches, and
        #: failed proxies re-run as local discoveries.
        self.peer_fetches = 0
        self.peer_fallbacks = 0
        #: latched when the owned/injected pool reports itself broken —
        #: cleared again when an owned pool is respawned.
        self.executor_broken = False
        #: owned pools discarded after breaking (and rebuilt on demand).
        self.pool_respawns = 0
        #: warmup bodies that completed in a pool worker.
        self.workers_warmed = 0
        #: the owning service's span ring (None = tracing off).  Jobs
        #: record admission/coalescing/deadline spans here and ingest
        #: the spans their workers bring back.
        self.tracer = None

    # ------------------------------------------------------------------ #
    # identity                                                            #
    # ------------------------------------------------------------------ #

    #: distinct (preset, seed, validate) identities memoised by
    #: :meth:`report_key`; far above any real preset x seed working set.
    KEY_MEMO_MAX = 4096

    def report_key(self, preset: str, seed: int, validate: bool) -> str:
        """The content-addressed key a discovery with these inputs lands
        under — computed exactly like the worker will: a pristine device,
        the service's engine/carveout config, all elements, no extensions.

        Memoised: the mapping is pure (the key is a function of nothing
        but these inputs and the queue's fixed config), and deriving it
        costs a SimulatedGPU construction plus a canonical-JSON SHA-256 —
        per-request overhead the keep-alive hot path cannot afford.
        Unknown presets raise *before* the memo is touched, so the memo
        never caches failures.
        """
        memo_key = (preset, int(seed), bool(validate))
        cached = self._key_memo.get(memo_key)
        if cached is not None:
            self._key_memo.move_to_end(memo_key)
            return cached
        spec = get_preset(preset)
        device = SimulatedGPU(spec, seed=seed, cache_config=self.cache_config)
        targets = NVIDIA_ELEMENTS if spec.vendor is Vendor.NVIDIA else AMD_ELEMENTS
        key = self.store.report_key(
            device,
            PChaseConfig(engine=self.engine),
            set(targets),
            frozenset(),
            validate,
        )
        self._key_memo[memo_key] = key
        while len(self._key_memo) > self.KEY_MEMO_MAX:
            self._key_memo.popitem(last=False)
        return key

    # ------------------------------------------------------------------ #
    # submission (single-flight) + LPT admission                          #
    # ------------------------------------------------------------------ #

    def submit(
        self,
        preset: str,
        seed: int = 0,
        validate: bool = False,
        force_local: bool = False,
    ) -> DiscoveryJob:
        """Enqueue a discovery, coalescing onto an in-flight twin.

        Raises :class:`repro.errors.UnknownGPUError` for unknown presets
        (before any key work).  The returned job may already be running —
        await :meth:`wait` for completion.

        ``force_local`` pins the job to a local discovery regardless of
        ring ownership — the ``/store/{key}?discover=1`` route uses it,
        which is what terminates proxy chains: the hop a peer sends us
        runs here or fails here, it never hops again.
        """
        key = self.report_key(preset, seed, validate)
        ctx = _trace.CURRENT.get()
        inflight = self._by_key.get(key)
        if inflight is not None and inflight.status in ("queued", "running"):
            inflight.requests += 1
            inflight.force_local = inflight.force_local or force_local
            self.coalesced += 1
            if ctx is not None:
                # The coalesced arrival's trace shows *that* it rode an
                # in-flight twin (and which one) — the discovery spans
                # themselves live in the first submitter's trace.
                _trace.record(
                    ctx,
                    "job.coalesced",
                    time.perf_counter(),
                    job_id=inflight.id,
                    key=key[:12],
                    requests=inflight.requests,
                )
            return inflight
        blocked_for = self._blocked_for(key)
        if blocked_for is not None:
            if ctx is not None:
                _trace.record(
                    ctx,
                    "job.fast_fail",
                    time.perf_counter(),
                    key=key[:12],
                    retry_after=round(blocked_for, 3),
                )
            return self._fast_fail(preset, seed, validate, key, blocked_for)
        job = DiscoveryJob(
            id=f"job-{next(self._ids)}",
            key=key,
            preset=preset,
            seed=seed,
            validate=validate,
            cost=self._estimate_cost(preset),
            force_local=force_local,
        )
        if ctx is not None:
            # Pre-allocate the job span's id: workers parent to it via
            # the traceparent argument, and _finish records it.
            job.trace_ctx = _trace.SpanContext(
                ctx.tracer, ctx.trace_id, _trace.new_span_id(), ctx.span_id
            )
        self._jobs[job.id] = job
        self._by_key[key] = job
        self._pending.append(job)
        self._pump()
        return job

    # ------------------------------------------------------------------ #
    # failure memo + circuit breaker                                      #
    # ------------------------------------------------------------------ #

    def _blocked_for(self, key: str) -> float | None:
        """Seconds the key is still blocked, or None to admit the job.

        A lapsed block admits the next request as the half-open probe:
        the memo entry survives (so one more failure re-opens the breaker
        immediately) but nothing is blocked until that probe resolves.
        """
        health = self._key_health.get(key)
        if health is None:
            return None
        remaining = health["blocked_until"] - time.monotonic()
        return remaining if remaining > 0 else None

    def _fast_fail(
        self, preset: str, seed: int, validate: bool, key: str, retry_after: float
    ) -> DiscoveryJob:
        """A pre-failed terminal job: the memoised error plus a hint."""
        health = self._key_health[key]
        job = DiscoveryJob(
            id=f"job-{next(self._ids)}",
            key=key,
            preset=preset,
            seed=seed,
            validate=validate,
            status="error",
            error=health["last_error"],
            error_kind="breaker" if health["open"] else "unavailable",
            retry_after=retry_after,
        )
        self.fast_failures += 1
        self._jobs[job.id] = job
        job.done.set()
        self._retire(job)
        return job

    def _record_failure(self, job: DiscoveryJob) -> None:
        health = self._key_health.setdefault(
            job.key,
            {"failures": 0, "blocked_until": 0.0, "open": False, "last_error": ""},
        )
        health["failures"] += 1
        health["last_error"] = job.error
        now = time.monotonic()
        if health["failures"] >= self.breaker_threshold:
            if not health["open"]:
                health["open"] = True
                self.breaker_opens += 1
            health["blocked_until"] = now + self.breaker_cooldown
        else:
            health["blocked_until"] = now + self.failure_ttl

    def _heal(self, key: str) -> None:
        self._key_health.pop(key, None)

    def open_breakers(self) -> dict[str, float]:
        """key -> seconds of cooldown left, for currently-open breakers."""
        now = time.monotonic()
        return {
            key: round(health["blocked_until"] - now, 3)
            for key, health in self._key_health.items()
            if health["open"] and health["blocked_until"] > now
        }

    def _estimate_cost(self, preset: str) -> float:
        """Admission cost: the recorded wall, or a calibrated estimate."""
        walls = self.store.recorded_walls()
        if preset in walls:
            return walls[preset]
        estimate = estimate_discovery_cost(get_preset(preset))
        ratios = []
        for label, wall in walls.items():
            try:
                e = estimate_discovery_cost(get_preset(label))
            except Exception:
                continue  # sidecar label that is not a preset
            if e > 0:
                ratios.append(wall / e)
        return estimate * (median(ratios) if ratios else 1.0)

    def _pump(self) -> None:
        """Start pending jobs while pool slots are free, longest first."""
        while self._pending and self._running < self.max_workers:
            job = max(self._pending, key=lambda j: j.cost)  # ties: earliest
            self._pending.remove(job)
            self._start(job)

    def _proxy_target(self, job: DiscoveryJob) -> str | None:
        """Where this job's discovery should run, or None for "here".

        A remote ring owner is always the target (that is what makes the
        owner the fleet-wide single-flight anchor).  When *we* own the
        key, ``proxy_only`` instances (read-only replicas) still proxy —
        to the owner's first successor, the nearest instance that might
        be able to produce the entry — because they can never run the
        discovery themselves.
        """
        if self.ring is None or job.force_local:
            return None
        owner = self.ring.owner(job.key)
        if owner != self.ring.self_node:
            return owner
        if self.proxy_only:
            return self.ring.peer_target(job.key)
        return None

    def _start(self, job: DiscoveryJob) -> None:
        try:
            # "serve.job" chaos point: admission-time failures (the job
            # never reaches the pool), distinct from in-worker faults.
            faults.inject("serve.job", job.preset)
        except Exception as exc:
            job.status = "error"
            job.error = str(exc) or type(exc).__name__
            job.error_kind = "transient" if is_transient(exc) else "permanent"
            self.discoveries_failed += 1
            self._record_failure(job)
            job.done.set()
            self._retire(job)
            return
        target = self._proxy_target(job)
        job.proxied = target is not None
        job.status = "running"
        self._running += 1
        start = time.perf_counter()
        loop = asyncio.get_running_loop()
        # The worker pool is persistent and pre-warmed (PR 9), so trace
        # context rides as a *call argument* — mutating os.environ here
        # could never reach an already-spawned worker process.  Workers
        # also run the discovery profiler whenever they are traced: the
        # per-phase profile comes back on the outcome and lands as a job
        # span attribute, never in served bytes.
        tp = job.trace_ctx.traceparent if job.trace_ctx is not None else None
        if job.proxied:
            # Not a discovery: ``discoveries_started`` stays untouched,
            # which is exactly what lets the acceptance check pin "one
            # discovery, on the owner" from each instance's /metrics.
            self.peer_fetches += 1
            call = [
                fetch_report_for_job,
                target,
                job.key,
                job.preset,
                job.seed,
                self.cache_config,
                self.engine,
                job.validate,
                str(self.store.root),
                self.peer_retry,
                self.peer_timeout,
            ]
            # Appended only when traced so stand-in worker functions with
            # the historical arity (tests, custom executors) keep working.
            if tp is not None:
                call.append(tp)
            future = loop.run_in_executor(self._ensure_executor(), *call)
        else:
            self.discoveries_started += 1
            call = [
                discover_one,
                job.preset,
                job.seed,
                self.cache_config,
                self.engine,
                job.validate,
                str(self.store.root),
                self.retry,
            ]
            if tp is not None:
                call.extend((tp, True))
            future = loop.run_in_executor(self._ensure_executor(), *call)
        if self.deadline_seconds is not None:
            self._deadline_handles[job.id] = loop.call_later(
                self.deadline_seconds, self._expire, job
            )
        future.add_done_callback(lambda f: self._finish(job, f, start))

    def _expire(self, job: DiscoveryJob) -> None:
        """Deadline timer: fail the job now, ignore its late result.

        The executor keeps its slot (there is no portable way to abort a
        running pool task) — the deadline bounds *client-visible* latency,
        not worker CPU; ``_finish`` releases the slot when the worker
        eventually returns and finds the job already terminal.
        """
        self._deadline_handles.pop(job.id, None)
        if job.status != "running":
            return
        job.status = "error"
        job.error = f"job deadline of {self.deadline_seconds:.3g} s exceeded"
        job.error_kind = "deadline"
        job.wall_seconds = self.deadline_seconds
        self.deadlines_expired += 1
        self.discoveries_failed += 1
        self._record_failure(job)
        if job.trace_ctx is not None:
            _trace.complete(
                job.trace_ctx,
                "job.run",
                time.perf_counter() - self.deadline_seconds,
                preset=job.preset,
                key=job.key[:12],
                proxied=job.proxied,
                outcome="deadline",
                deadline_s=self.deadline_seconds,
            )
            job.trace_ctx = None  # the late _finish must not re-record
        job.done.set()
        self._retire(job)

    def _finish(self, job: DiscoveryJob, future, start: float) -> None:
        self._running -= 1
        handle = self._deadline_handles.pop(job.id, None)
        if handle is not None:
            handle.cancel()
        if job.done.is_set():
            # Already expired (or shut down): the result is late; the
            # only thing left to collect is the pool slot.
            try:
                future.exception()  # consume, keep the loop's logs quiet
            except BaseException:
                pass  # .exception() re-raises CancelledError
            self._pump()
            return
        try:
            outcome = future.result()
            report, wall, error = outcome.report, outcome.wall_seconds, outcome.error
            job.error_kind = outcome.error_kind
            job.attempts = outcome.attempts
            self.retries_total += max(0, outcome.attempts - 1)
        except BaseException as exc:
            # BaseException: a shutdown's cancel_futures raises
            # CancelledError here, and an escaped exception would leave
            # job.done unset with every waiter hung forever.
            outcome = None
            report, wall, error = None, time.perf_counter() - start, (
                str(exc) or type(exc).__name__
            )
            job.error_kind = "infrastructure"
            if isinstance(exc, BrokenExecutor):
                self._note_broken_pool()
        job.wall_seconds = wall
        if job.trace_ctx is not None and self.tracer is not None and outcome is not None:
            # Spans recorded inside the worker process (or the proxy
            # fetch thread) travel home on the outcome and join the
            # request's trace here.  Ingest happens even when the job is
            # about to be requeued locally: the failed peer attempt is
            # part of the story.
            spans = getattr(outcome, "spans", None)
            if spans:
                self.tracer.ingest(spans)
        if report is None or error:
            if job.proxied and not self.proxy_only:
                # Writable-instance fallback: the owner could not serve
                # this key, so run the discovery here — one local job,
                # same waiters, no failure recorded against the key (the
                # key did nothing wrong; a peer did).
                self.peer_fallbacks += 1
                job.proxied = False
                job.force_local = True
                job.status = "queued"
                self._pending.append(job)
                self._pump()
                return
            job.status = "error"
            job.error = error or "discovery produced no report"
            self.discoveries_failed += 1
            self._record_failure(job)
        else:
            job.status = "done"
            self.discoveries_completed += 1
            self._heal(job.key)
            # Feed the LPT scheduler exactly like the fleet parent does:
            # only genuinely measured walls, never hash-lookup hits —
            # and never peer-fetch walls, which measure the network, not
            # the discovery this preset would cost here.
            # Off the loop thread — record_wall takes a sidecar lock and
            # may briefly sleep-retry under writer contention.
            if not job.proxied and report.meta.get("cache", {}).get("status") != "hit":
                asyncio.get_running_loop().run_in_executor(
                    None, self.store.record_wall, job.preset, wall
                )
            if self.prune_bytes is not None:
                # Opportunistic budget enforcement after every landed
                # entry (the serve-side twin of the CLI's post-run prune).
                asyncio.get_running_loop().run_in_executor(
                    None, self.store.prune, self.prune_bytes
                )
        if job.trace_ctx is not None:
            attrs: dict = {
                "preset": job.preset,
                "key": job.key[:12],
                "proxied": job.proxied,
                "outcome": job.status,
                "attempts": job.attempts,
                "requests": job.requests,
                "queue_wait_ms": round(max(0.0, start - job.submitted_at) * 1e3, 3),
            }
            if job.error_kind:
                attrs["error_kind"] = job.error_kind
            profile = getattr(outcome, "profile", None) if outcome is not None else None
            if profile is not None:
                # The per-phase discovery profile rides on the job span
                # (ISSUE: "attached to job spans") — it never enters the
                # served report bytes.
                attrs["profile"] = profile
            _trace.complete(job.trace_ctx, "job.run", start, **attrs)
        job.done.set()
        self._retire(job)
        if job.status == "done" and self.on_entry_landed is not None:
            try:
                # The service invalidates its hot cache and catalog
                # snapshot here; a broken hook must not hang waiters.
                self.on_entry_landed(job.key)
            except Exception:
                pass
        self._pump()

    def _retire(self, job: DiscoveryJob) -> None:
        """Bound the job table: evict the oldest terminal jobs."""
        self._terminal.append(job.id)
        while len(self._terminal) > self.MAX_TERMINAL_JOBS:
            old = self._jobs.pop(self._terminal.popleft(), None)
            if old is not None and self._by_key.get(old.key) is old:
                del self._by_key[old.key]

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self._executor_factory is not None:
                self._executor = self._executor_factory()
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            # A fresh pool is healthy by definition; the latch tracked
            # the pool we just replaced.
            self.executor_broken = False
            if self._rewarm_pending:
                self._rewarm_pending = False
                self._submit_warmups()
        return self._executor

    def _note_broken_pool(self) -> None:
        """Discard an owned pool that reported itself broken.

        A :class:`BrokenExecutor` poisons every future submitted to that
        pool, so several in-flight jobs may land here — the ``None``
        guard makes the discard (and the respawn counter) fire once per
        breakage, not once per victim.  The replacement is built lazily
        by :meth:`_ensure_executor` on the next job, matching the PR-6
        taxonomy: breakage is ``infrastructure``, the *next* request
        probes recovery.  Injected executors stay the injector's to
        manage — the latch is set, nothing is discarded.
        """
        self.executor_broken = True
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.pool_respawns += 1
            self._rewarm_pending = self.pool_mode == "warm"

    # ------------------------------------------------------------------ #
    # pre-warming (--pool warm)                                           #
    # ------------------------------------------------------------------ #

    def prewarm(self) -> None:
        """Create the pool now and pay worker cold-start before traffic.

        Called by the service at start under ``--pool warm``: the pool
        exists before the first request, and one warmup body per slot
        makes every worker import the discovery stack and build its tier
        scaffolding up front.  Best-effort — a warmup failure (e.g. a
        pool broken at boot) is recorded through the normal broken-pool
        path on first real use, never raised here.
        """
        try:
            self._ensure_executor()
        except Exception:
            return
        self._submit_warmups()

    def _submit_warmups(self) -> None:
        if self._executor is None:
            return
        for _ in range(self.max_workers):
            try:
                future = self._executor.submit(_warm_worker, str(self.store.root))
            except Exception:
                return  # pool rejected the submit; first real job reports
            future.add_done_callback(self._warmup_done)

    def _warmup_done(self, future) -> None:
        try:
            future.result()
        except BaseException:
            return  # warmup is advisory; real jobs surface pool health
        self.workers_warmed += 1

    # ------------------------------------------------------------------ #
    # queries / lifecycle                                                 #
    # ------------------------------------------------------------------ #

    def get(self, job_id: str) -> DiscoveryJob | None:
        return self._jobs.get(job_id)

    @property
    def inflight(self) -> int:
        """Jobs admitted but not yet finished (running + pending)."""
        return self._running + len(self._pending)

    async def wait(self, job: DiscoveryJob) -> DiscoveryJob:
        """Block until ``job`` reaches a terminal state."""
        await job.done.wait()
        return job

    def shutdown(self) -> None:
        """Fail still-queued jobs and release the owned executor.

        Queued jobs never reach ``_finish`` (they were never started),
        so their waiters must be released here; running jobs terminate
        through ``_finish`` — normally, or via the cancellation their
        executor future receives.  Injected executors are the
        injector's to manage.
        """
        pending, self._pending = self._pending, []
        for job in pending:
            job.status = "error"
            job.error = "service shut down before the job started"
            job.done.set()
            self._retire(job)
        for handle in self._deadline_handles.values():
            handle.cancel()
        self._deadline_handles.clear()
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
