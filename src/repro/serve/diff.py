"""Structural report diff: drift detection between two cached reports.

``GET /diff/{a}/{b}`` answers the fleet-operations question the
comparison matrix cannot: *did this device change?*  Two discoveries of
the same preset at different times (different seeds, tool versions,
carveout configs) should agree attribute for attribute; where they
don't, the delta is either measurement jitter — numeric, inside the
attribute's cross-check tolerance — or genuine drift worth an alert.

The classification reuses :mod:`repro.stats.compare` (the same
relative-error and tolerance predicates the validator applies to
benchmark-vs-reference deltas) with the validator's per-attribute
tolerances as defaults, so "within tolerance" means the same thing in a
diff as it does in a validation pass.

Per (element, attribute) pair the diff records one
:class:`AttributeDelta` with a status:

* ``identical`` — values equal (numeric or not);
* ``within_tolerance`` — numeric values differ but the relative error
  is inside the attribute's tolerance (jitter, not drift);
* ``drift`` — numeric values differ beyond tolerance;
* ``changed`` — non-numeric values differ (sharing tuples, CU maps);
* ``only_a`` / ``only_b`` — the attribute (or whole element) has a
  value on one side only.

Attributes absent on both sides produce no row — a diff is about what
changed, not a re-print of two reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.benchmarks.base import Source
from repro.core.report import ATTRIBUTES, TopologyReport
from repro.graph.ids import element_kind, element_node_id
from repro.stats.compare import relative_error, within_tolerance
from repro.validate.validator import DEFAULT_TOLERANCES

__all__ = ["AttributeDelta", "ReportDiff", "diff_reports"]

#: Statuses that mean "the two reports genuinely disagree".
_DIVERGENT = ("drift", "changed", "only_a", "only_b")

#: Ascending severity: a node's drift status is the *worst* status any
#: of its attributes carries.
_SEVERITY = ("identical", "within_tolerance", "only_b", "only_a", "changed", "drift")
_SEVERITY_RANK = {status: i for i, status in enumerate(_SEVERITY)}


@dataclass(frozen=True)
class AttributeDelta:
    """One (element, attribute) comparison between two reports."""

    element: str
    attribute: str
    status: str
    a_value: Any
    b_value: Any
    unit: str = ""
    rel_error: float | None = None
    tolerance: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "element": self.element,
            "attribute": self.attribute,
            "status": self.status,
            "a_value": self.a_value,
            "b_value": self.b_value,
            "unit": self.unit,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
        }


@dataclass
class ReportDiff:
    """All deltas between two reports, plus the drift verdict."""

    a_label: str
    b_label: str
    deltas: list[AttributeDelta] = field(default_factory=list)

    @property
    def divergent(self) -> list[AttributeDelta]:
        """Deltas that are real disagreements (not jitter, not equal)."""
        return [d for d in self.deltas if d.status in _DIVERGENT]

    @property
    def identical(self) -> bool:
        return not self.divergent

    @property
    def verdict(self) -> str:
        return "identical" if self.identical else "drift"

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for d in self.deltas:
            counts[d.status] = counts.get(d.status, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "mt4g-repro-diff/1",
            "a": self.a_label,
            "b": self.b_label,
            "verdict": self.verdict,
            "summary": self.summary(),
            "deltas": [d.as_dict() for d in self.deltas],
        }

    def to_graph_view(self) -> dict[str, Any]:
        """The diff folded onto the canonical topology graph's nodes.

        Every drifted element becomes one entry addressed by its shared
        graph node id (:func:`repro.graph.ids.element_node_id` — the same
        id the sys-sage tree and ``GET /graph/{preset}`` use), carrying
        the *worst* per-attribute status as the node status plus the full
        per-attribute deltas.  The classification itself is untouched —
        the same tolerance predicates, re-keyed onto graph nodes so a
        drift alert can point at the exact node a dashboard renders.
        """
        by_element: dict[str, list[AttributeDelta]] = {}
        for delta in self.deltas:
            by_element.setdefault(delta.element, []).append(delta)
        nodes = []
        for element in sorted(by_element, key=element_node_id):
            deltas = by_element[element]
            status = max(
                (d.status for d in deltas),
                key=lambda s: _SEVERITY_RANK.get(s, len(_SEVERITY)),
            )
            nodes.append(
                {
                    "id": element_node_id(element),
                    "kind": element_kind(element),
                    "element": element,
                    "status": status,
                    "deltas": [d.as_dict() for d in deltas],
                }
            )
        return {
            "schema": "mt4g-repro-graph-diff/1",
            "a": self.a_label,
            "b": self.b_label,
            "verdict": self.verdict,
            "summary": self.summary(),
            "node_count": len(nodes),
            "nodes": nodes,
        }

    def to_markdown_lines(self) -> list[str]:
        lines = [
            f"# MT4G Report Diff — {self.a_label} vs {self.b_label}",
            "",
            f"Verdict: **{self.verdict}** "
            + ", ".join(f"{v} {k}" for k, v in self.summary().items()),
            "",
        ]
        divergent = self.divergent
        if divergent:
            lines.append("| Element | Attribute | A | B | Δ | Status |")
            lines.append("|---|---|---|---|---|---|")
            for d in divergent:
                delta = f"{d.rel_error:.1%}" if d.rel_error is not None else "—"
                lines.append(
                    f"| {d.element} | {d.attribute} | {d.a_value} "
                    f"| {d.b_value} | {delta} | {d.status} |"
                )
            lines.append("")
        return lines

    def to_markdown(self) -> str:
        return "\n".join(self.to_markdown_lines())


def _comparable(report: TopologyReport, element: str, attribute: str) -> Any:
    """The attribute's value when it carries one, else None.

    Not-applicable and unavailable attributes are "no value" — a diff
    between two honest absences is not a delta.
    """
    av = report.memory[element].get(attribute)
    if av.source in (Source.NOT_APPLICABLE, Source.UNAVAILABLE):
        return None
    return av.value


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_reports(
    a: TopologyReport,
    b: TopologyReport,
    a_label: str = "a",
    b_label: str = "b",
    tolerances: dict[str, float] | None = None,
) -> ReportDiff:
    """Structural diff of two reports, element by element.

    ``tolerances`` overrides the validator's per-attribute relative
    tolerances (:data:`repro.validate.validator.DEFAULT_TOLERANCES`);
    attributes without an entry compare exactly.
    """
    tol = {**DEFAULT_TOLERANCES, **(tolerances or {})}
    diff = ReportDiff(a_label=a_label, b_label=b_label)
    names = list(a.memory) + [n for n in b.memory if n not in a.memory]
    for name in names:
        in_a, in_b = name in a.memory, name in b.memory
        if not (in_a and in_b):
            diff.deltas.append(
                AttributeDelta(
                    element=name,
                    attribute="*",
                    status="only_a" if in_a else "only_b",
                    a_value="present" if in_a else None,
                    b_value="present" if in_b else None,
                )
            )
            continue
        for attribute in ATTRIBUTES:
            va = _comparable(a, name, attribute)
            vb = _comparable(b, name, attribute)
            if va is None and vb is None:
                continue
            unit = a.memory[name].get(attribute).unit or b.memory[name].get(
                attribute
            ).unit
            if va is None or vb is None:
                status, err = ("only_b" if va is None else "only_a"), None
            elif _is_numeric(va) and _is_numeric(vb):
                err = relative_error(va, vb)
                if va == vb:
                    status = "identical"
                elif within_tolerance(va, vb, tol.get(attribute, 0.0)):
                    status = "within_tolerance"
                else:
                    status = "drift"
            else:
                status, err = ("identical" if va == vb else "changed"), None
            diff.deltas.append(
                AttributeDelta(
                    element=name,
                    attribute=attribute,
                    status=status,
                    a_value=va,
                    b_value=vb,
                    unit=unit,
                    rel_error=None if err is None else round(err, 6),
                    tolerance=tol.get(attribute),
                )
            )
    return diff
