"""HTTP route handlers of the topology query service.

The endpoint surface (responses are keep-alive-framed — bounded
``Content-Length`` bodies, ``Connection`` negotiated by the transport):

* ``GET /healthz`` — liveness + store shape;
* ``GET /metrics`` — hit/miss/inflight/latency counters, per tier when
  the store is tiered; JSON by default, Prometheus text format via
  ``?format=prometheus`` or ``Accept: text/plain``;
* ``GET /store/{key}`` — the raw wrapped entry blob under a
  content-addressed key, **local tiers only** (a peer asking us must
  never trigger our own peer fetch — that is what keeps the replication
  graph loop-free); ``?discover=1&preset=…`` additionally asks this
  instance to produce a cold entry through its single-flight queue (the
  cross-instance stampede-protection hop, pinned local so proxy chains
  terminate after one hop);
* ``GET /devices`` — the catalog, filterable
  (``?vendor=NVIDIA&verdict=pass`` …);
* ``GET /devices/{preset}/report`` — one cached report, with format
  negotiation over the three existing writers (``?format=json|markdown|
  csv`` or an ``Accept`` header); JSON is byte-identical to the CLI's
  ``mt4g --no-cache -j`` output for the same (preset, config, seed),
  because the store archives reports *before* per-run cache provenance
  is attached — served bytes are content, not run history.  A warm
  request is served from the :class:`~repro.serve.hotcache.
  HotReportCache` — the pre-rendered response bytes per (report key,
  format), no unpickle and no re-render — when the service enables it;
  byte-identity holds either way because keys are content-addressed;
* ``GET /compare?presets=a,b,…`` — the fleet comparison matrix plus the
  fleet judge's cross-device verdict over cached reports;
* ``GET /diff/{a}/{b}`` — the structural drift diff of two reports;
  ``?view=graph`` re-keys the same per-attribute tolerance
  classification onto canonical graph node ids;
* ``GET /graph/{preset}`` — the canonical topology graph of one cached
  report (``?format=json|dot`` or ``Accept: text/vnd.graphviz``); the
  JSON bytes equal ``mt4g graph`` for the same (preset, seed), because
  the graph is a pure function of report content;
* ``GET /graph?group=vendor|microarchitecture`` — the whole catalog as
  one fleet graph, devices under grouping nodes;
* ``POST /discover`` — enqueue a discovery (single-flight), 202 + job;
* ``GET /jobs/{id}`` — job status.

Cold keys behave uniformly: with discovery enabled the request rides the
single-flight queue (N concurrent cold requests → one measurement) and
responds when the entry lands; in read-only mode (``--no-discover``)
a cold key is served from the ring peers when a ring is attached (the
store's peer tier pulls it, the job queue proxies the discovery), and
only a replica with nowhere to go answers 404 — a *structured* 404
(``{"error", "status", "key", "read_only"}``) so the peer tier on the
other side can tell "cold" from "will never have it".
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.output import csv_out, json_out, markdown
from repro.core.report import TopologyReport
from repro.errors import ReproError
from repro.gpuspec.presets import get_preset
from repro.graph import FLEET_GROUPINGS, build_fleet_graph, build_graph, to_dot, to_graph_json
from repro.obs.trace import CURRENT
from repro.serve.diff import diff_reports
from repro.validate.fleet import FleetEntry, FleetResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.server import TopologyService

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "HTTPResponse",
    "dispatch",
    "error_response",
    "json_response",
    "route_label",
]

#: format name -> (renderer, content type); the three writers the CLI
#: already ships, reused verbatim so a served report and a written file
#: never drift apart.
_REPORT_FORMATS = {
    "json": (lambda r: json_out.to_json(r) + "\n", json_out.CONTENT_TYPE),
    "markdown": (markdown.to_markdown, markdown.CONTENT_TYPE),
    "csv": (csv_out.to_csv, csv_out.CONTENT_TYPE),
}
_FORMAT_ALIASES = {"md": "markdown", "prom": "prometheus", "graphviz": "dot"}
_ACCEPT_TO_FORMAT = {
    json_out.CONTENT_TYPE: "json",
    markdown.CONTENT_TYPE: "markdown",
    csv_out.CONTENT_TYPE: "csv",
    # what Prometheus scrapers send; only /metrics lists this format as
    # supported, so other endpoints still 406 on a text/plain Accept.
    "text/plain": "prometheus",
    # Graphviz renderers; only the /graph endpoints support it.
    "text/vnd.graphviz": "dot",
    "*/*": "json",
}

#: Prometheus exposition content type (text format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Graphviz DOT content type (the IANA-registered vnd tree name).
DOT_CONTENT_TYPE = "text/vnd.graphviz; charset=utf-8"

_STORE_KEY = re.compile(r"^[0-9a-f]{64}$")


class HTTPError(Exception):
    """A handler-level failure with an HTTP status.

    ``retry_after`` (seconds) marks a *temporary* condition — it becomes
    a ``Retry-After`` header so well-behaved clients back off instead of
    hammering a key whose circuit breaker is open.

    ``extra`` keys are folded into the JSON error body — how a 404 tells
    a fetching peer *which* key is missing and whether this instance is
    read-only (i.e. will never produce it on its own).
    """

    def __init__(
        self,
        status: int,
        detail: str,
        retry_after: float | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.retry_after = retry_after
        self.extra = extra


@dataclass
class HTTPRequest:
    """One parsed request (transport-independent: tests build these)."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: protocol version off the request line — keep-alive defaults
    #: differ between HTTP/1.1 (persist) and HTTP/1.0 (close).
    version: str = "HTTP/1.1"

    @property
    def parts(self) -> list[str]:
        return [p for p in self.path.split("/") if p]


@dataclass
class HTTPResponse:
    """One response; the server layer wires it onto the socket."""

    status: int = 200
    body: bytes = b""
    content_type: str = json_out.CONTENT_TYPE
    #: extra response headers (``Retry-After``, ``X-MT4G-Stale`` …).
    headers: dict[str, str] = field(default_factory=dict)

    _REASONS = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        406: "Not Acceptable",
        413: "Payload Too Large",
        500: "Internal Server Error",
        502: "Bad Gateway",
        503: "Service Unavailable",
    }

    @property
    def reason(self) -> str:
        return self._REASONS.get(self.status, "Unknown")

    def encode(self, close: bool = True) -> bytes:
        """The response's wire bytes; ``close`` picks the Connection
        header (the transport decides — per-connection state lives
        there, not on the response)."""
        extra = "".join(f"{k}: {v}\r\n" for k, v in self.headers.items())
        head = (
            f"HTTP/1.1 {self.status} {self.reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + self.body


def json_response(payload: Any, status: int = 200) -> HTTPResponse:
    body = json.dumps(json_out.to_jsonable(payload), indent=2) + "\n"
    return HTTPResponse(status=status, body=body.encode("utf-8"))


def error_response(
    status: int,
    detail: str,
    retry_after: float | None = None,
    extra: dict[str, Any] | None = None,
) -> HTTPResponse:
    body: dict[str, Any] = {"error": detail, "status": status}
    if extra:
        body.update(extra)
    response = json_response(body, status=status)
    if retry_after is not None:
        # ceil — "retry after 0 seconds" would invite an immediate
        # re-request into a still-open breaker window.
        response.headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
    return response


def route_label(request: HTTPRequest) -> str:
    """The metrics bucket for a request: its route *template*.

    Raw paths would explode the metrics cardinality (every preset its
    own bucket) — requests aggregate under the endpoint shape instead.
    """
    parts = request.parts
    if len(parts) == 3 and parts[0] == "devices" and parts[2] == "report":
        return f"{request.method} /devices/{{preset}}/report"
    if len(parts) == 3 and parts[0] == "diff":
        return f"{request.method} /diff/{{a}}/{{b}}"
    if len(parts) == 2 and parts[0] == "graph":
        return f"{request.method} /graph/{{preset}}"
    if len(parts) == 2 and parts[0] == "jobs":
        return f"{request.method} /jobs/{{id}}"
    if len(parts) == 2 and parts[0] == "store":
        return f"{request.method} /store/{{key}}"
    if len(parts) == 2 and parts[0] == "traces":
        return f"{request.method} /traces/{{id}}"
    if len(parts) == 1:
        return f"{request.method} /{parts[0]}"
    return f"{request.method} <unmatched>"


# ---------------------------------------------------------------------- #
# shared helpers                                                          #
# ---------------------------------------------------------------------- #


def _seed_param(request: HTTPRequest, name: str, default: int = 0) -> int:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        seed = int(raw)
    except ValueError:
        raise HTTPError(400, f"query parameter {name!r} must be an integer") from None
    return _checked_seed(seed, name)


def _checked_seed(seed: int, name: str = "seed") -> int:
    # Range-checked here so a client typo is a 400, not a numpy
    # ValueError escaping as a 500 (the alerting bucket in /metrics).
    if seed < 0:
        raise HTTPError(400, f"{name!r} must be a non-negative integer")
    return seed


def _bool_param(request: HTTPRequest, name: str, default: bool = False) -> bool:
    raw = request.query.get(name)
    if raw is None:
        return default
    if raw.lower() in ("1", "true", "yes", "on"):
        return True
    if raw.lower() in ("0", "false", "no", "off"):
        return False
    raise HTTPError(400, f"query parameter {name!r} must be a boolean")


def negotiate_format(request: HTTPRequest, supported=("json", "markdown", "csv")) -> str:
    """Response format from ``?format=`` (wins) or the Accept header."""
    raw = request.query.get("format")
    if raw is not None:
        fmt = _FORMAT_ALIASES.get(raw.lower(), raw.lower())
        if fmt not in supported:
            raise HTTPError(
                406, f"unsupported format {raw!r}; supported: {', '.join(supported)}"
            )
        return fmt
    accept = request.headers.get("accept", "")
    for clause in accept.split(","):
        mime = clause.partition(";")[0].strip().lower()
        fmt = _ACCEPT_TO_FORMAT.get(mime)
        if fmt in supported:
            return fmt
    if accept.strip():
        # an explicit Accept that matches none of our types is a 406;
        # an absent header defaults to JSON.
        raise HTTPError(406, f"no supported media type in Accept: {accept!r}")
    return supported[0]


def _known_preset(name: str) -> str:
    try:
        get_preset(name)
    except ReproError as exc:
        raise HTTPError(404, str(exc)) from None
    return name


def _report_key(
    service: "TopologyService", preset: str, seed: int, validate: bool
) -> str:
    """The content-addressed key these request parameters resolve to.

    An unknown preset surfaces as the same 404 :func:`_known_preset`
    raises — key derivation validates the preset as a side effect, so
    hot-cache lookups need no separate existence check.
    """
    try:
        return service.jobs.report_key(preset, seed, validate)
    except ReproError as exc:
        raise HTTPError(404, str(exc)) from None


def _off_loop(fn, *args):
    """``run_in_executor`` that carries the active span context along.

    ``loop.run_in_executor`` does not copy contextvars into the worker
    thread, so without this the store/tier spans recorded under an
    off-loop read would silently detach from their request trace.  With
    tracing off this is exactly the plain call (one ``None`` check).
    """
    loop = asyncio.get_running_loop()
    ctx = CURRENT.get()
    if ctx is None:
        return loop.run_in_executor(None, fn, *args)

    def call():
        token = CURRENT.set(ctx)
        try:
            return fn(*args)
        finally:
            CURRENT.reset(token)

    return loop.run_in_executor(None, call)


async def _load_report(
    service: "TopologyService",
    preset: str,
    seed: int,
    validate: bool,
    allow_stale: bool = False,
    key: str | None = None,
) -> tuple[TopologyReport, bool]:
    """The cached report for (preset, config, seed) — discovering on a
    miss through the single-flight queue unless the service is read-only.
    Returns ``(report, stale)``; ``stale`` is True only when
    ``allow_stale`` let a failed discovery fall back to the last
    known-good report for the same key (marked ``X-MT4G-Stale`` upstream).

    A discovery that fails with no fallback is a 503 with a
    ``Retry-After`` hint (the key's breaker/memo window) — temporary by
    taxonomy, unlike the 500s below, which are store corruption.

    Every call unpickles a fresh report object, so handlers may mutate
    (the fleet judge recalibrates confidences in place) without
    poisoning later requests.
    """
    if key is None:
        _known_preset(preset)
        key = service.jobs.report_key(preset, seed, validate)
    # store.get unpickles a whole report from disk (and, on a tiered
    # store, may fall through memory → disk → peer fetch) — off the loop
    # thread so a slow disk or peer never stalls every other connection.
    payload = await _off_loop(service.store.get, key)
    if payload is None:
        if service.read_only and not service.can_proxy(key):
            # A replica with no peer to lean on: the structured 404 the
            # peer tier parses — key + read_only tell the fetching side
            # this instance will never produce the entry by itself.
            raise HTTPError(
                404,
                f"no cached report for {preset} (seed {seed}, "
                f"validate={validate}) and discovery is disabled "
                "(read-only mode)",
                extra={"key": key, "read_only": True, "preset": preset},
            )
        job = service.jobs.submit(preset, seed=seed, validate=validate)
        await service.jobs.wait(job)
        if job.status == "error":
            if allow_stale:
                stale = service.last_good(key)
                if stale is not None:
                    service.metrics.count_stale()
                    return stale, True
            raise HTTPError(
                503,
                f"discovery failed for {preset}: {job.error}",
                retry_after=job.retry_after or service.jobs.failure_ttl,
            )
        payload = await _off_loop(service.store.get, key)
        if payload is None:
            raise HTTPError(
                500,
                f"discovery for {preset} completed but the store entry is "
                "missing (pruned or unwritable store?)",
            )
    report = payload.get("report") if isinstance(payload, dict) else None
    if not isinstance(report, TopologyReport):
        raise HTTPError(500, f"cache entry for {preset} holds no report payload")
    service.remember_good(key, report)
    return report, False


# ---------------------------------------------------------------------- #
# endpoints                                                               #
# ---------------------------------------------------------------------- #


async def handle_healthz(service: "TopologyService") -> HTTPResponse:
    # entry_count globs the whole entries/ tree — off the loop thread,
    # because liveness probes are the highest-frequency caller; the
    # catalog's short-TTL snapshot means repeated polls don't re-walk
    # the cache directory at all.
    entries = await asyncio.get_running_loop().run_in_executor(
        None, service.catalog.entry_count
    )
    # "degraded" is still a 200 — the service is alive and serving what
    # it can; the reasons tell an operator (or orchestrator) why some
    # keys are currently failing fast.
    reasons = []
    open_breakers = service.jobs.open_breakers()
    if open_breakers:
        reasons.append(f"{len(open_breakers)} discovery circuit breaker(s) open")
    if service.jobs.executor_broken:
        reasons.append("discovery executor broken (worker process died)")
    payload: dict[str, Any] = {
        "status": "degraded" if reasons else "ok",
        "read_only": service.read_only,
        "store": str(service.store.root),
        "entries": entries,
        "inflight": service.jobs.inflight,
    }
    if reasons:
        payload["degraded_reasons"] = reasons
    return json_response(payload)


def handle_metrics(service: "TopologyService", request: HTTPRequest) -> HTTPResponse:
    fmt = negotiate_format(request, supported=("json", "prometheus"))
    snapshot = service.metrics.snapshot(
        store=service.store,
        jobs=service.jobs,
        hot_cache=service.hot_cache,
        tracer=service.tracer,
    )
    if fmt == "prometheus":
        from repro.serve.metrics import to_prometheus

        return HTTPResponse(
            body=to_prometheus(snapshot).encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )
    return json_response(snapshot)


_TRACE_ID = re.compile(r"^[0-9a-f]{32}$")


def _require_tracer(service: "TopologyService"):
    if service.tracer is None:
        raise HTTPError(
            404, "tracing is disabled (start the service with --trace)"
        )
    return service.tracer


def handle_traces(service: "TopologyService", request: HTTPRequest) -> HTTPResponse:
    tracer = _require_tracer(service)
    negotiate_format(request, supported=("json",))
    summaries = tracer.summaries()
    return json_response(
        {
            "schema": "mt4g-repro-traces/1",
            "count": len(summaries),
            "stats": tracer.stats(),
            "traces": summaries,
        }
    )


def _peer_trace_spans(node: str, trace_id: str) -> list[dict]:
    """Best-effort fetch of one peer's spans for a trace (blocking)."""
    import urllib.error
    import urllib.request

    url = f"{node}/traces/{trace_id}?local=1"
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url, headers={"Accept": "application/json"}),
            timeout=2.0,
        ) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return []
    spans = payload.get("spans")
    return spans if isinstance(spans, list) else []


async def handle_trace(
    service: "TopologyService", request: HTTPRequest, trace_id: str
) -> HTTPResponse:
    """One trace's spans — fleet-assembled unless ``?local=1``.

    A proxied cold request leaves spans on every instance it crossed;
    the entry instance answers for the whole trace by merging its ring
    peers' ``?local=1`` views (best-effort: a dead peer just contributes
    nothing), deduplicated by span id.
    """
    tracer = _require_tracer(service)
    negotiate_format(request, supported=("json",))
    trace_id = trace_id.lower()
    if not _TRACE_ID.match(trace_id):
        raise HTTPError(400, f"not a trace id: {trace_id!r}")
    spans = tracer.spans(trace_id)
    local_only = _bool_param(request, "local")
    if not local_only and service.ring is not None:
        peers = [n for n in service.ring.nodes if n != service.ring.self_node]
        fetched = await asyncio.gather(
            *(_off_loop(_peer_trace_spans, node, trace_id) for node in peers)
        )
        seen = {span.get("span_id") for span in spans}
        for extra in fetched:
            for span in extra:
                if span.get("span_id") not in seen:
                    seen.add(span.get("span_id"))
                    spans.append(span)
    if not spans:
        raise HTTPError(404, f"no trace {trace_id} in the ring buffer")
    spans.sort(key=lambda s: s.get("start_ms", 0))
    return json_response(
        {
            "schema": "mt4g-repro-traces/1",
            "trace_id": trace_id,
            "span_count": len(spans),
            "spans": spans,
        }
    )


async def handle_store(
    service: "TopologyService", request: HTTPRequest, key: str
) -> HTTPResponse:
    """Serve the raw wrapped entry blob under ``key`` (peer replication).

    Lookup is pinned to **local tiers** (``peer=False``): if this
    instance does not hold the entry, the answer is a structured 404 —
    never a fetch from a third instance, so replication requests cannot
    chain A → B → C (or loop back to A).

    ``?discover=1&preset=…&seed=…&validate=…`` is the proxy hop: a
    non-owner asks us (the ring owner) to *produce* a cold entry.  The
    job is submitted ``force_local`` and rides this instance's
    single-flight queue, so N proxy hops + M direct requests for one key
    still coalesce into exactly one discovery here.  The preset triple
    must re-derive the requested key — a mismatch is the client's bug
    and a 400, not a discovery of something else.
    """
    if not _STORE_KEY.match(key):
        raise HTTPError(400, f"not a content-addressed store key: {key!r}")
    blob = await _off_loop(lambda: service.store.get_blob(key, peer=False))
    if blob is None and _bool_param(request, "discover"):
        if service.read_only:
            raise HTTPError(
                404,
                f"no store entry {key[:12]}… and discovery is disabled "
                "(read-only mode)",
                extra={"key": key, "read_only": True},
            )
        preset = request.query.get("preset")
        if not preset:
            raise HTTPError(400, "store discovery needs ?preset=…")
        _known_preset(preset)
        seed = _seed_param(request, "seed")
        validate = _bool_param(request, "validate")
        expected = service.jobs.report_key(preset, seed, validate)
        if expected != key:
            raise HTTPError(
                400,
                f"key {key[:12]}… does not match preset={preset} "
                f"seed={seed} validate={validate}",
            )
        job = service.jobs.submit(preset, seed=seed, validate=validate, force_local=True)
        await service.jobs.wait(job)
        if job.status == "error":
            raise HTTPError(
                503,
                f"discovery failed for {preset}: {job.error}",
                retry_after=job.retry_after or service.jobs.failure_ttl,
            )
        blob = await _off_loop(lambda: service.store.get_blob(key, peer=False))
    if blob is None:
        raise HTTPError(
            404,
            f"no store entry {key[:12]}…",
            extra={"key": key, "read_only": service.read_only},
        )
    return HTTPResponse(body=blob, content_type="application/octet-stream")


async def handle_devices(
    service: "TopologyService", request: HTTPRequest
) -> HTTPResponse:
    # The catalog renders JSON only, but ?format= must still negotiate
    # (406 on csv/markdown) instead of silently returning the wrong type.
    negotiate_format(request, supported=("json",))
    filters = {k: v for k, v in request.query.items() if k != "format"}
    try:
        # Catalog enumeration unpickles every store entry (O(store)
        # disk work) — run it off the event loop.
        entries = await asyncio.get_running_loop().run_in_executor(
            None, lambda: service.catalog.entries(**filters)
        )
    except ValueError as exc:
        raise HTTPError(400, str(exc)) from None
    return json_response(
        {
            "schema": "mt4g-repro-catalog/1",
            "count": len(entries),
            "devices": [e.as_dict() for e in entries],
        }
    )


async def handle_report(
    service: "TopologyService", request: HTTPRequest, preset: str
) -> HTTPResponse:
    fmt = negotiate_format(request)
    seed = _seed_param(request, "seed")
    validate = _bool_param(request, "validate")
    hot = service.hot_cache
    key = _report_key(service, preset, seed, validate) if hot is not None else None
    if hot is not None:
        cached = hot.get(key, f"report:{fmt}")
        if cached is not None:
            # The warm path: pre-rendered bytes, no store read, no
            # renderer — byte-identical by content-addressing.
            body, content_type = cached
            return HTTPResponse(body=body, content_type=content_type)
    report, stale = await _load_report(
        service, preset, seed, validate, allow_stale=True, key=key
    )
    render, content_type = _REPORT_FORMATS[fmt]
    body = render(report).encode("utf-8")
    if hot is not None and not stale:
        # Stale fallbacks are never cached: staleness must be
        # re-evaluated (and re-marked) on every request.
        hot.put(key, f"report:{fmt}", body, content_type)
    response = HTTPResponse(body=body, content_type=content_type)
    if stale:
        # The bytes are a previously-served known-good report, not the
        # (currently failing) discovery — staleness is never silent.
        response.headers["X-MT4G-Stale"] = "true"
    return response


async def handle_compare(
    service: "TopologyService", request: HTTPRequest
) -> HTTPResponse:
    fmt = negotiate_format(request, supported=("json", "markdown"))
    raw = request.query.get("presets", "")
    presets = [p for p in (s.strip() for s in raw.split(",")) if p]
    if len(presets) < 2:
        raise HTTPError(400, "compare needs ?presets=a,b[,c…] (two or more)")
    if len(set(presets)) != len(presets):
        raise HTTPError(400, f"duplicate preset(s) in compare: {sorted(presets)}")
    seed = _seed_param(request, "seed")
    validate = _bool_param(request, "validate")
    start = time.perf_counter()
    # No stale fallback here: a comparison mixing one stale and one fresh
    # report would silently judge an inconsistent fleet.
    loaded = await asyncio.gather(
        *(_load_report(service, p, seed, validate) for p in presets)
    )
    reports = [report for report, _ in loaded]

    def build_and_judge() -> FleetResult:
        # Sidecar read + the CPU-bound fleet judge, off the loop thread.
        walls = service.store.recorded_walls()
        result = FleetResult(
            entries=[
                FleetEntry(
                    preset=p, seed=seed, report=r, wall_seconds=walls.get(p, 0.0)
                )
                for p, r in zip(presets, reports)
            ],
            jobs=0,  # served from the store, not a worker pool
            total_wall_seconds=time.perf_counter() - start,
            seed=seed,
        )
        result.validate()  # the PR-3 cross-device judge
        return result

    result = await asyncio.get_running_loop().run_in_executor(None, build_and_judge)
    if fmt == "markdown":
        return HTTPResponse(
            body=result.to_markdown().encode("utf-8"),
            content_type=markdown.CONTENT_TYPE,
        )
    return json_response(
        {
            "schema": "mt4g-repro-compare/1",
            "seed": seed,
            "presets": presets,
            "matrix": result.comparison_matrix(),
            "fleet_validation": result.validation.as_dict(),
        }
    )


async def handle_diff(
    service: "TopologyService", request: HTTPRequest, a: str, b: str
) -> HTTPResponse:
    view = request.query.get("view", "flat")
    if view not in ("flat", "graph"):
        raise HTTPError(400, f"unknown diff view {view!r}; supported: flat, graph")
    # The graph view is a JSON-only re-keying of the classification —
    # negotiating markdown against it would silently drop the node ids.
    supported = ("json",) if view == "graph" else ("json", "markdown")
    fmt = negotiate_format(request, supported=supported)
    seed = _seed_param(request, "seed")
    seed_a = _seed_param(request, "seed_a", seed)
    seed_b = _seed_param(request, "seed_b", seed)
    validate = _bool_param(request, "validate")
    (report_a, _), (report_b, _) = await asyncio.gather(
        _load_report(service, a, seed_a, validate),
        _load_report(service, b, seed_b, validate),
    )
    diff = diff_reports(
        report_a,
        report_b,
        a_label=f"{a}@seed{seed_a}",
        b_label=f"{b}@seed{seed_b}",
    )
    if view == "graph":
        return json_response(diff.to_graph_view())
    if fmt == "markdown":
        return HTTPResponse(
            body=diff.to_markdown().encode("utf-8"),
            content_type=markdown.CONTENT_TYPE,
        )
    return json_response(diff.as_dict())


def _graph_response(graph, fmt: str) -> HTTPResponse:
    """Render one graph; JSON bytes match the CLI's ``mt4g graph`` output
    (canonical rendering + one trailing newline) so CI can ``cmp`` them."""
    if fmt == "dot":
        return HTTPResponse(
            body=(to_dot(graph) + "\n").encode("utf-8"),
            content_type=DOT_CONTENT_TYPE,
        )
    return HTTPResponse(
        body=(to_graph_json(graph) + "\n").encode("utf-8"),
        content_type=json_out.CONTENT_TYPE,
    )


async def handle_graph(
    service: "TopologyService", request: HTTPRequest, preset: str
) -> HTTPResponse:
    """The canonical topology graph of one cached report.

    No stale fallback: the contract is byte-identity with the CLI for
    the same (preset, seed), and silently rendering yesterday's report
    as today's graph would break exactly that.
    """
    fmt = negotiate_format(request, supported=("json", "dot"))
    seed = _seed_param(request, "seed")
    validate = _bool_param(request, "validate")
    hot = service.hot_cache
    key = _report_key(service, preset, seed, validate) if hot is not None else None
    if hot is not None:
        cached = hot.get(key, f"graph:{fmt}")
        if cached is not None:
            body, content_type = cached
            return HTTPResponse(body=body, content_type=content_type)
    report, _ = await _load_report(service, preset, seed, validate, key=key)
    response = _graph_response(build_graph(report), fmt)
    if hot is not None:
        hot.put(key, f"graph:{fmt}", response.body, response.content_type)
    return response


async def handle_fleet_graph(
    service: "TopologyService", request: HTTPRequest
) -> HTTPResponse:
    """The whole catalog as one fleet graph (``?group=…`` picks the axis)."""
    fmt = negotiate_format(request, supported=("json", "dot"))
    group = request.query.get("group", "vendor")
    if group not in FLEET_GROUPINGS:
        raise HTTPError(
            400,
            f"unknown grouping {group!r}; supported: {', '.join(FLEET_GROUPINGS)}",
        )
    # Catalog enumeration unpickles every store entry — off the loop.
    entries = await asyncio.get_running_loop().run_in_executor(
        None, service.catalog.entries
    )
    return _graph_response(build_fleet_graph(entries, group=group), fmt)


def handle_discover(service: "TopologyService", request: HTTPRequest) -> HTTPResponse:
    if service.read_only:
        raise HTTPError(405, "discovery is disabled (read-only mode)")
    try:
        payload = json.loads(request.body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HTTPError(400, f"request body is not JSON: {exc}") from None
    if not isinstance(payload, dict) or "preset" not in payload:
        raise HTTPError(400, 'discover body must be {"preset": …[, "seed", "validate"]}')
    preset = _known_preset(str(payload["preset"]))
    seed = payload.get("seed", 0)
    validate = payload.get("validate", False)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise HTTPError(400, '"seed" must be an integer')
    _checked_seed(seed)
    if not isinstance(validate, bool):
        raise HTTPError(400, '"validate" must be a boolean')
    job = service.jobs.submit(preset, seed=seed, validate=validate)
    return json_response(job.as_dict(), status=202)


def handle_job(service: "TopologyService", job_id: str) -> HTTPResponse:
    job = service.jobs.get(job_id)
    if job is None:
        raise HTTPError(404, f"no job {job_id!r}")
    return json_response(job.as_dict())


async def dispatch(service: "TopologyService", request: HTTPRequest) -> HTTPResponse:
    """Route one request; raises :class:`HTTPError` for client errors."""
    parts = request.parts
    if request.method == "GET":
        if parts == ["healthz"]:
            return await handle_healthz(service)
        if parts == ["metrics"]:
            return handle_metrics(service, request)
        if parts == ["traces"]:
            return handle_traces(service, request)
        if len(parts) == 2 and parts[0] == "traces":
            return await handle_trace(service, request, parts[1])
        if parts == ["devices"]:
            return await handle_devices(service, request)
        if len(parts) == 3 and parts[0] == "devices" and parts[2] == "report":
            return await handle_report(service, request, parts[1])
        if parts == ["compare"]:
            return await handle_compare(service, request)
        if len(parts) == 3 and parts[0] == "diff":
            return await handle_diff(service, request, parts[1], parts[2])
        if parts == ["graph"]:
            return await handle_fleet_graph(service, request)
        if len(parts) == 2 and parts[0] == "graph":
            return await handle_graph(service, request, parts[1])
        if len(parts) == 2 and parts[0] == "jobs":
            return handle_job(service, parts[1])
        if len(parts) == 2 and parts[0] == "store":
            return await handle_store(service, request, parts[1])
    elif request.method == "POST":
        if parts == ["discover"]:
            return handle_discover(service, request)
    elif request.method in ("HEAD", "PUT", "DELETE", "PATCH"):
        raise HTTPError(405, f"method {request.method} not supported")
    raise HTTPError(404, f"no route for {request.method} {request.path}")
