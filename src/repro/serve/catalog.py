"""Device catalog: the registry view over a :class:`DiscoveryCache`.

The store is content-addressed — keys are opaque SHA-256 digests — so
"what devices do we have reports for?" needs an enumeration that opens
the payloads and reads the identity back *out* of them.  The catalog
does exactly that: every whole-report entry becomes a
:class:`CatalogEntry` carrying the metadata a consumer filters by
(preset, vendor, microarchitecture, seed, schema version, recorded wall,
validation verdict), built on the store's ``entries()`` walk, which
skips corrupted or concurrently-pruned files silently.

Enumeration unpickles every entry, so a catalog listing is O(store).
Recomputing it per request kept ``GET /devices`` honest but made the
registry view (and ``/healthz``'s entry count) re-walk the cache
directory for every poll — with keep-alive connections (PR 9) a single
client can poll hundreds of times a second.  The catalog therefore
keeps a **short-TTL snapshot** (``ttl`` seconds; 0 restores the
recompute-always behaviour): within the window every request filters
the same walked list, and the service *invalidates* the snapshot the
moment a discovery lands a new entry
(:meth:`~repro.serve.server.TopologyService._entry_landed`), so the
only staleness a client can observe is a concurrent writer outside
this process — bounded by the TTL.

Snapshot state is guarded by a lock because handlers call
:meth:`DeviceCatalog.entries` from executor threads, not the loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.cache.store import DiscoveryCache
from repro.core.report import TopologyReport

__all__ = ["CatalogEntry", "DeviceCatalog"]


@dataclass(frozen=True)
class CatalogEntry:
    """One cached whole-report discovery, described by its metadata."""

    key: str
    preset: str
    vendor: str
    microarchitecture: str
    model: str
    seed: int
    schema_version: int
    #: per-preset validation verdict ("pass"/"fail"), or "unvalidated"
    #: when the cached discovery ran without the validation pass.
    verdict: str
    #: smoothed measured discovery wall from the store's sidecar, or
    #: None when no cold run recorded one for this preset yet.
    wall_seconds: float | None
    benchmarks_executed: int
    elements: tuple[str, ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "preset": self.preset,
            "vendor": self.vendor,
            "microarchitecture": self.microarchitecture,
            "model": self.model,
            "seed": self.seed,
            "schema_version": self.schema_version,
            "verdict": self.verdict,
            "wall_seconds": self.wall_seconds,
            "benchmarks_executed": self.benchmarks_executed,
            "elements": list(self.elements),
        }


class DeviceCatalog:
    """Filterable enumeration of a store's cached discoveries."""

    #: attributes a ``GET /devices`` query may filter on; values are
    #: compared as strings so ``seed=7`` and ``vendor=AMD`` read alike.
    FILTERS = ("preset", "vendor", "microarchitecture", "verdict", "seed")

    def __init__(
        self, store: DiscoveryCache, ttl: float = 0.0, clock=time.monotonic
    ) -> None:
        self.store = store
        #: seconds a walked snapshot stays valid; 0 disables caching.
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._snapshot: list[CatalogEntry] | None = None
        self._snapshot_at = 0.0
        self._count: int | None = None
        self._count_at = 0.0

    def invalidate(self) -> None:
        """Drop the snapshot (a discovery just landed an entry)."""
        with self._lock:
            self._snapshot = None
            self._count = None

    def entries(self, **filters: str) -> list[CatalogEntry]:
        """All cached discoveries matching ``filters``, deterministically
        ordered by (preset, seed, key).

        Unknown filter names raise ``ValueError`` (the HTTP layer turns
        that into a 400 — a typoed filter silently matching everything
        would be a lie, not a listing).
        """
        unknown = set(filters) - set(self.FILTERS)
        if unknown:
            raise ValueError(
                f"unknown catalog filter(s) {sorted(unknown)}; "
                f"supported: {', '.join(self.FILTERS)}"
            )
        entries = self._all_entries()
        # Filters always apply to the snapshot afresh — only the O(store)
        # walk is cached, never any one query's view of it.
        out = [
            entry
            for entry in entries
            if all(
                str(getattr(entry, name)) == str(wanted)
                for name, wanted in filters.items()
            )
        ]
        return out

    def entry_count(self) -> int:
        """The store's entry count, behind the same TTL as the listing.

        Counted directly on the store (not ``len(entries())``): the raw
        count includes non-report payloads such as escalation memos,
        matching what ``/healthz`` reported before the snapshot existed.
        """
        if self.ttl <= 0:
            return self.store.entry_count()
        with self._lock:
            if self._count is not None and self._clock() - self._count_at < self.ttl:
                return self._count
        count = self.store.entry_count()
        with self._lock:
            self._count = count
            self._count_at = self._clock()
        return count

    def _all_entries(self) -> list[CatalogEntry]:
        """The walked (unfiltered, sorted) listing, TTL-cached."""
        if self.ttl > 0:
            with self._lock:
                if (
                    self._snapshot is not None
                    and self._clock() - self._snapshot_at < self.ttl
                ):
                    return self._snapshot
        walls = self.store.recorded_walls()
        out: list[CatalogEntry] = []
        for key, payload in self.store.entries():
            entry = self._entry_from_payload(key, payload, walls)
            if entry is None:  # escalation memo entries are not devices
                continue
            out.append(entry)
        out.sort(key=lambda e: (e.preset, e.seed, e.key))
        if self.ttl > 0:
            with self._lock:
                self._snapshot = out
                self._snapshot_at = self._clock()
        return out

    def _entry_from_payload(
        self, key: str, payload: Any, walls: dict[str, float]
    ) -> CatalogEntry | None:
        """A catalog entry, or None when the payload is not a report."""
        if not isinstance(payload, dict):
            return None
        report = payload.get("report")
        if not isinstance(report, TopologyReport):
            return None
        vendor = report.general.vendor
        model = report.general.model
        # The simulated runtime names devices "<VENDOR> <spec name>" and
        # spec names equal preset names — strip the vendor prefix to
        # recover the preset key the CLI and the fleet schedule use.
        preset = model[len(vendor) + 1 :] if model.startswith(f"{vendor} ") else model
        verdict = (
            "unvalidated" if report.validation is None else report.validation.verdict
        )
        return CatalogEntry(
            key=key,
            preset=preset,
            vendor=vendor,
            microarchitecture=report.general.microarchitecture,
            model=model,
            seed=int(report.seed),
            schema_version=self.store.version,
            verdict=verdict,
            wall_seconds=walls.get(preset),
            benchmarks_executed=int(report.runtime.benchmarks_executed),
            elements=tuple(report.memory),
        )
