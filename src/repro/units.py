"""Byte-size and frequency unit helpers.

The paper mixes binary units (KiB, MiB) with vendor marketing units
(KB == KiB in whitepapers, TB/s for bandwidth).  This module centralises
parsing and formatting so every benchmark and report speaks one language:

* sizes are plain ``int`` bytes internally,
* bandwidths are ``float`` bytes/second internally,
* frequencies are ``float`` Hz internally.
"""

from __future__ import annotations

import re

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "format_bandwidth",
    "format_latency_cycles",
    "is_power_of_two",
    "round_to_power_of_two",
    "nearest_integer_fraction",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(b|kib|mib|gib|kb|mb|gb|k|m|g)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    None: 1,
    "b": 1,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    # The vendor whitepapers the paper validates against use KB to mean KiB
    # for cache sizes; we follow the same convention when parsing.
    "kb": KiB,
    "mb": MiB,
    "gb": GiB,
    "k": KiB,
    "m": MiB,
    "g": GiB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human size string (``"228 KiB"``, ``"50MB"``) into bytes.

    Integers/floats pass through (interpreted as bytes).  Raises
    ``ValueError`` on unparseable input or negative sizes.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size {text!r}")
    value = float(m.group(1))
    unit = m.group(2).lower() if m.group(2) else None
    return int(round(value * _UNIT_FACTORS[unit]))


def format_size(num_bytes: int | float) -> str:
    """Render bytes with a binary suffix, trimming trailing zeros.

    Fractional byte counts (averages, confidence-weighted consensus
    values) keep their decimals instead of being silently truncated.

    >>> format_size(243712)
    '238 KiB'
    >>> format_size(512.5)
    '512.50 B'
    >>> format_size(0)
    '0 B'
    """
    num_bytes = float(num_bytes)
    for factor, suffix in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(num_bytes) >= factor:
            value = num_bytes / factor
            if abs(value - round(value)) < 1e-9:
                return f"{int(round(value))} {suffix}"
            return f"{value:.2f} {suffix}"
    if abs(num_bytes - round(num_bytes)) < 1e-9:
        return f"{int(round(num_bytes))} B"
    return f"{num_bytes:.2f} B"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth in binary units, TiB/s down to B/s.

    The paper's Table III uses TiB/s and GiB/s; sub-GiB/s rates (small
    synthetic devices, throttled links) fall through to MiB/s and KiB/s
    instead of rendering as a misleading ``"0.0 GiB/s"``.

    >>> format_bandwidth(2.5 * 1024.0**4)
    '2.50 TiB/s'
    >>> format_bandwidth(100 * 1024.0**3)
    '100.0 GiB/s'
    >>> format_bandwidth(512 * 1024.0**2)
    '512.0 MiB/s'
    >>> format_bandwidth(8 * 1024.0)
    '8.0 KiB/s'
    >>> format_bandwidth(42.0)
    '42 B/s'
    """
    tib = 1024.0**4
    gib = 1024.0**3
    mib = 1024.0**2
    kib = 1024.0
    if bytes_per_second >= tib:
        return f"{bytes_per_second / tib:.2f} TiB/s"
    if bytes_per_second >= gib:
        return f"{bytes_per_second / gib:.1f} GiB/s"
    if bytes_per_second >= mib:
        return f"{bytes_per_second / mib:.1f} MiB/s"
    if bytes_per_second >= kib:
        return f"{bytes_per_second / kib:.1f} KiB/s"
    return f"{bytes_per_second:.0f} B/s"


def format_latency_cycles(cycles: float) -> str:
    """Render a latency measured in clock cycles."""
    return f"{cycles:.0f} cyc"


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for 0, negatives and non-powers."""
    return n > 0 and (n & (n - 1)) == 0


def round_to_power_of_two(n: float) -> int:
    """Snap a positive value to the nearest power of two (ties round up).

    Used by the cache-line-size heuristics (paper Section IV-E assumes the
    line size is a power of two).
    """
    if n <= 0:
        raise ValueError(f"expected positive value, got {n}")
    lower = 1 << max(0, int(n).bit_length() - 1)
    while lower * 2 <= n:
        lower *= 2
    upper = lower * 2
    return lower if (n - lower) < (upper - n) else upper


def nearest_integer_fraction(total: int, measured: float, max_denominator: int = 16) -> tuple[int, float]:
    """Find ``k`` so that ``total / k`` is closest to ``measured``.

    Used by the L2 segment-size benchmark (paper Section IV-F.1): the API
    reports the total L2 size while the benchmark observes one segment; the
    number of segments must be an integer.  Returns ``(k, confidence)`` where
    confidence in [0, 1] decreases with the relative distance between the
    measured size and the chosen fraction.
    """
    if total <= 0 or measured <= 0:
        raise ValueError("total and measured must be positive")
    best_k, best_err = 1, float("inf")
    for k in range(1, max_denominator + 1):
        err = abs(total / k - measured)
        if err < best_err:
            best_k, best_err = k, err
    rel_err = best_err / (total / best_k)
    confidence = max(0.0, 1.0 - 2.0 * rel_err)
    return best_k, confidence
