"""Canonical topology graph model (the toposcope-shaped normalisation).

One ``nodes``/``edges`` representation of a discovered topology, shared
by every consumer that previously re-interpreted the flat report:

* :mod:`repro.graph.ids` — the element/node addressing scheme
  (``cache:L2[segment=1]``) used by the graph builder, the sys-sage
  component tree, and the drift diff alike;
* :mod:`repro.graph.model` — typed nodes (gpu / cluster / sm / cache /
  memory / host …), typed edges (contains / reaches / shares),
  content-derived ids and canonical ordering, so
  :func:`~repro.graph.model.to_graph_json` is byte-stable;
* :mod:`repro.graph.build` — :func:`~repro.graph.build.build_graph`
  (one report → one graph, optional MIG overlay + host context) and
  :func:`~repro.graph.build.build_fleet_graph` (catalog → grouped
  fleet view);
* :mod:`repro.graph.host` — best-effort ``/proc``//``/sys`` collectors
  with per-collector timeouts and a degradation counter; they can make
  a graph richer, never make a build fail.

Entry points: ``mt4g graph`` (CLI) and ``GET /graph/{preset}`` /
``GET /graph?group=…`` (serve); both render identical bytes.
"""

from repro.graph.build import FLEET_GROUPINGS, build_fleet_graph, build_graph
from repro.graph.host import HostTopology, collect_host
from repro.graph.ids import element_kind, element_node_id, node_id
from repro.graph.model import (
    EDGE_KINDS,
    GRAPH_SCHEMA,
    NODE_KINDS,
    GraphEdge,
    GraphError,
    GraphNode,
    TopologyGraph,
    to_dot,
    to_graph_json,
)

__all__ = [
    "EDGE_KINDS",
    "FLEET_GROUPINGS",
    "GRAPH_SCHEMA",
    "GraphEdge",
    "GraphError",
    "GraphNode",
    "HostTopology",
    "NODE_KINDS",
    "TopologyGraph",
    "build_fleet_graph",
    "build_graph",
    "collect_host",
    "element_kind",
    "element_node_id",
    "node_id",
    "to_dot",
    "to_graph_json",
]
