"""Best-effort host context collectors (toposcope-style).

The topology graph is a *GPU* model until something places the GPU in a
machine: which CPU package, which NUMA node, which PCIe device.  These
collectors read that context from ``/proc`` and ``/sys`` — and nothing
else: no root, no vendor tools, no subprocesses — with the two rules the
toposcope lineage teaches:

* **graceful skip** — a missing path, unreadable file, or malformed
  payload never raises past the collector; it lands in
  :attr:`HostTopology.degraded` as ``{collector: reason}`` and the graph
  simply lacks those nodes;
* **per-collector timeouts** — every collector runs under its own wall
  budget (a wedged ``/sys`` read on one collector must not stall the
  graph build), enforced with a worker thread per collector.

Host context is opt-in (``mt4g graph --host``) and never part of the
served ``/graph/{preset}`` bytes: host facts are per-machine, and the
serving contract is that graph bytes depend on report *content* only.
"""

from __future__ import annotations

import socket
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = ["HostTopology", "collect_host", "DEFAULT_COLLECTOR_TIMEOUT"]

#: Wall budget per collector (seconds).  File reads are normally
#: microseconds; the budget exists for pathological /sys backends.
DEFAULT_COLLECTOR_TIMEOUT = 2.0

#: PCI class prefixes that are display/GPU devices (0x03xxxx).
_GPU_PCI_CLASS_PREFIX = "0x03"


@dataclass
class HostTopology:
    """Everything the collectors managed to learn about this machine.

    Every field is optional by construction: an empty ``HostTopology``
    (all collectors degraded) is a valid, attachable result — the graph
    builder simply attaches nothing for the missing parts.
    """

    hostname: str | None = None
    cpu: dict[str, Any] | None = None
    memory_bytes: int | None = None
    numa_nodes: list[dict[str, Any]] = field(default_factory=list)
    pci_gpus: list[dict[str, Any]] = field(default_factory=list)
    #: collector name -> reason it produced nothing ("missing: …",
    #: "timeout", "error: …").  The degradation counter the acceptance
    #: criterion asks for: a graph build can always report *why* host
    #: context is absent without ever failing because of it.
    degraded: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "hostname": self.hostname,
            "cpu": self.cpu,
            "memory_bytes": self.memory_bytes,
            "numa_nodes": self.numa_nodes,
            "pci_gpus": self.pci_gpus,
            "degraded": dict(self.degraded),
        }


# ---------------------------------------------------------------------- #
# individual collectors (each may raise; the harness catches)             #
# ---------------------------------------------------------------------- #


def _read_text(path: Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def _collect_hostname(proc: Path, sys: Path) -> str:
    hostname = socket.gethostname()
    if not hostname:
        raise FileNotFoundError("empty hostname")
    return hostname


def _collect_cpu(proc: Path, sys: Path) -> dict[str, Any]:
    cpuinfo = proc / "cpuinfo"
    text = _read_text(cpuinfo)
    model, processors = None, 0
    for line in text.splitlines():
        key, _, value = line.partition(":")
        key = key.strip()
        if key == "processor":
            processors += 1
        elif key in ("model name", "Model", "cpu model") and model is None:
            model = value.strip()
    if processors == 0:
        raise ValueError(f"no processors listed in {cpuinfo}")
    return {"model": model or "unknown", "logical_cpus": processors}


def _collect_memory(proc: Path, sys: Path) -> int:
    for line in _read_text(proc / "meminfo").splitlines():
        if line.startswith("MemTotal:"):
            kib = int(line.split()[1])
            return kib * 1024
    raise ValueError("no MemTotal in meminfo")


def _collect_numa(proc: Path, sys: Path) -> list[dict[str, Any]]:
    root = sys / "devices" / "system" / "node"
    nodes = []
    for node_dir in sorted(root.glob("node[0-9]*"), key=lambda p: p.name):
        entry: dict[str, Any] = {"node": int(node_dir.name[len("node") :])}
        cpulist = node_dir / "cpulist"
        if cpulist.is_file():
            entry["cpus"] = _read_text(cpulist).strip()
        meminfo = node_dir / "meminfo"
        if meminfo.is_file():
            for line in _read_text(meminfo).splitlines():
                if "MemTotal:" in line:
                    entry["memory_bytes"] = int(line.split()[-2]) * 1024
                    break
        nodes.append(entry)
    if not nodes:
        raise FileNotFoundError(f"no NUMA nodes under {root}")
    return nodes


def _collect_pci_gpus(proc: Path, sys: Path) -> list[dict[str, Any]]:
    root = sys / "bus" / "pci" / "devices"
    if not root.is_dir():
        raise FileNotFoundError(f"no PCI device tree under {root}")
    gpus = []
    for dev in sorted(root.iterdir(), key=lambda p: p.name):
        class_file = dev / "class"
        if not class_file.is_file():
            continue
        pci_class = _read_text(class_file).strip()
        if not pci_class.startswith(_GPU_PCI_CLASS_PREFIX):
            continue
        entry: dict[str, Any] = {"address": dev.name, "class": pci_class}
        for attr in ("vendor", "device", "numa_node"):
            attr_file = dev / attr
            if attr_file.is_file():
                value = _read_text(attr_file).strip()
                entry[attr] = int(value, 0) if attr == "numa_node" else value
        gpus.append(entry)
    return gpus


_COLLECTORS: tuple[tuple[str, Callable[[Path, Path], Any]], ...] = (
    ("hostname", _collect_hostname),
    ("cpu", _collect_cpu),
    ("memory", _collect_memory),
    ("numa", _collect_numa),
    ("pci", _collect_pci_gpus),
)


# ---------------------------------------------------------------------- #
# the harness                                                             #
# ---------------------------------------------------------------------- #


def collect_host(
    proc_root: str | Path = "/proc",
    sys_root: str | Path = "/sys",
    timeout: float = DEFAULT_COLLECTOR_TIMEOUT,
) -> HostTopology:
    """Run every collector best-effort; never raises.

    Each collector gets its own thread and its own ``timeout`` — one
    wedged read degrades one collector, not the scan.  ``proc_root`` /
    ``sys_root`` exist so tests (and containers with bind-mounted
    pseudo-filesystems) can point the collectors anywhere.
    """
    proc, sys = Path(proc_root), Path(sys_root)
    host = HostTopology()
    # One worker per collector: a timed-out collector's thread must not
    # hold up the next collector's slot.  shutdown(wait=False) below —
    # a context manager would block on the very thread that timed out.
    pool = ThreadPoolExecutor(
        max_workers=len(_COLLECTORS), thread_name_prefix="mt4g-host"
    )
    try:
        futures = {name: pool.submit(fn, proc, sys) for name, fn in _COLLECTORS}
        for name, future in futures.items():
            try:
                result = future.result(timeout=timeout)
            except FutureTimeout:
                host.degraded[name] = f"timeout after {timeout:g}s"
                continue
            except (OSError, ValueError) as exc:
                host.degraded[name] = f"{type(exc).__name__}: {exc}"
                continue
            except Exception as exc:  # collector bug: degrade, never fail
                host.degraded[name] = f"error: {type(exc).__name__}: {exc}"
                continue
            if name == "hostname":
                host.hostname = result
            elif name == "cpu":
                host.cpu = result
            elif name == "memory":
                host.memory_bytes = result
            elif name == "numa":
                host.numa_nodes = result
            elif name == "pci":
                host.pci_gpus = result
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return host
