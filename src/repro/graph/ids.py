"""The one element/node addressing scheme every topology layer shares.

Three layers address the same hardware elements: the sys-sage component
tree (``cache:L2[segment=1]`` nodes), the structural report diff (which
must say *which* element drifted), and the canonical topology graph.
Before this module each of them formatted its own identifiers, which is
exactly how ``cache:L2.1`` in one view and ``L2/seg1`` in another drift
apart.  Now all three call :func:`node_id` / :func:`element_node_id`, so
an element has one address everywhere it appears.

The grammar is deliberately tiny and deterministic::

    <kind>:<name>                      e.g.  cache:L2, sm:3, gpu:NVIDIA A100
    <kind>:<name>[k=v,k2=v2]           e.g.  cache:L2[segment=1]
                                             cache:L1[sm=0]

Qualifiers are sorted by key, so the same logical element can never
serialise to two different strings — the property the graph model's
byte-stable JSON rests on.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ELEMENT_KINDS",
    "element_kind",
    "element_node_id",
    "node_id",
]

#: Report memory-element name -> graph node kind.  Everything the tool
#: can discover (NVIDIA_ELEMENTS + AMD_ELEMENTS) is listed explicitly;
#: unknown names default to "cache" — a future logical cache space is a
#: cache until declared otherwise.
ELEMENT_KINDS = {
    "L1": "cache",
    "L2": "cache",
    "L3": "cache",
    "vL1": "cache",
    "sL1d": "cache",
    "Texture": "cache",
    "Readonly": "cache",
    "ConstL1": "cache",
    "ConstL1.5": "cache",
    "SharedMem": "scratchpad",
    "LDS": "scratchpad",
    "DeviceMemory": "memory",
}


def element_kind(element: str) -> str:
    """The node kind of a report memory element (cache / scratchpad / memory)."""
    return ELEMENT_KINDS.get(element, "cache")


def node_id(kind: str, name: str, **qualifiers: Any) -> str:
    """The canonical node identifier for (kind, name, qualifiers).

    >>> node_id("cache", "L2")
    'cache:L2'
    >>> node_id("cache", "L2", segment=1)
    'cache:L2[segment=1]'
    >>> node_id("cache", "L1", sm=0)
    'cache:L1[sm=0]'
    >>> node_id("gpu", "NVIDIA A100", seed=0, preset="A100")
    'gpu:NVIDIA A100[preset=A100,seed=0]'
    """
    if not kind or not name:
        raise ValueError(f"node id needs a kind and a name, got {kind!r}:{name!r}")
    if any(ch in kind for ch in ":[],="):
        raise ValueError(f"reserved character in node kind {kind!r}")
    # The kind/name separator is the *first* colon, so names may carry
    # colons of their own (PCI addresses: "pci:0000:00:02.0").
    if any(ch in str(name) for ch in "[],="):
        raise ValueError(f"reserved character in node name {name!r}")
    out = f"{kind}:{name}"
    if qualifiers:
        parts = []
        for key in sorted(qualifiers):
            value = str(qualifiers[key])
            # checked per key/value — a comma inside one value would be
            # indistinguishable from the qualifier separator.
            if any(ch in key for ch in ":[],=") or any(ch in value for ch in ":[],="):
                raise ValueError(f"reserved character in qualifier {key}={value!r}")
            parts.append(f"{key}={value}")
        out += f"[{','.join(parts)}]"
    return out


def element_node_id(element: str, **qualifiers: Any) -> str:
    """The canonical node id of a report memory element.

    >>> element_node_id("L2")
    'cache:L2'
    >>> element_node_id("L2", segment=1)
    'cache:L2[segment=1]'
    >>> element_node_id("SharedMem", sm=2)
    'scratchpad:SharedMem[sm=2]'
    """
    return node_id(element_kind(element), element, **qualifiers)
