"""Canonical topology graph model: typed nodes, typed edges, stable bytes.

This is the normalized ``nodes``/``edges`` shape (toposcope-style) every
topology consumer shares.  Three properties carry the whole design:

* **typed** — node kinds and edge kinds come from closed vocabularies
  (:data:`NODE_KINDS`, :data:`EDGE_KINDS`); a consumer switching on
  ``kind`` can enumerate its cases;
* **content-derived identifiers** — node ids are produced by
  :mod:`repro.graph.ids` from what the node *is* (kind, name,
  qualifiers), never from insertion order or object identity, so two
  builds of the same topology agree on every id;
* **canonical ordering** — serialisation sorts nodes by (kind rank, id)
  and edges by (kind rank, src, dst, sorted attrs), and
  :func:`to_graph_json` sorts every attribute key, so the JSON is a pure
  function of graph *content*: build order cannot leak into the bytes.

That last property is what the serving layer's byte-identity contract
extends onto graphs: a graph built from a cold discovery, a warm cache
hit, or a peer-replicated blob serialises to identical bytes, and CI
``cmp``s the CLI rendering against the HTTP one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.output.json_out import to_jsonable
from repro.errors import ReproError

__all__ = [
    "EDGE_KINDS",
    "GRAPH_SCHEMA",
    "GraphEdge",
    "GraphNode",
    "NODE_KINDS",
    "TopologyGraph",
    "to_dot",
    "to_graph_json",
]

GRAPH_SCHEMA = "mt4g-repro-graph/1"

#: Closed node vocabulary, in canonical serialisation order: fleet
#: grouping first, then host context, then the GPU hierarchy from the
#: device down to memory.
NODE_KINDS = (
    "fleet",
    "group",
    "host",
    "cpu",
    "numa",
    "pci",
    "machine",
    "gpu",
    "cluster",
    "sm",
    "cu",
    "cache",
    "scratchpad",
    "memory",
)

#: Closed edge vocabulary: ``contains`` is the component hierarchy,
#: ``reaches`` is the data path (what a load from here can hit next),
#: ``shares`` marks logical spaces backed by the same physical silicon
#: (the report's ``shared_with`` protocol result).
EDGE_KINDS = ("contains", "reaches", "shares")

_NODE_RANK = {kind: i for i, kind in enumerate(NODE_KINDS)}
_EDGE_RANK = {kind: i for i, kind in enumerate(EDGE_KINDS)}


class GraphError(ReproError):
    """A structural violation: duplicate id, dangling edge, unknown kind."""


@dataclass(frozen=True)
class GraphNode:
    """One typed node; ``id`` is content-derived (see :mod:`.ids`)."""

    id: str
    kind: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "name": self.name,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class GraphEdge:
    """One typed edge between two existing node ids."""

    src: str
    dst: str
    kind: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "attrs": self.attrs,
        }

    def sort_key(self) -> tuple:
        return (
            _EDGE_RANK.get(self.kind, len(EDGE_KINDS)),
            self.src,
            self.dst,
            tuple(sorted((k, str(v)) for k, v in self.attrs.items())),
        )


class TopologyGraph:
    """A validated, canonically-serialisable nodes/edges topology."""

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._nodes: dict[str, GraphNode] = {}
        self._edges: list[GraphEdge] = []
        self._edge_seen: set[tuple] = set()

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    def add_node(self, node_id: str, kind: str, name: str, **attrs: Any) -> str:
        """Add one node; re-adding an *identical* node is a no-op.

        Two different payloads under one id would make the graph depend
        on insertion order — that is a builder bug, and it raises.
        """
        if kind not in NODE_KINDS:
            raise GraphError(f"unknown node kind {kind!r}; known: {NODE_KINDS}")
        node = GraphNode(id=node_id, kind=kind, name=str(name), attrs=attrs)
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.as_dict() != node.as_dict():
                raise GraphError(f"conflicting re-definition of node {node_id!r}")
            return node_id
        self._nodes[node_id] = node
        return node_id

    def add_edge(self, src: str, dst: str, kind: str = "contains", **attrs: Any) -> None:
        """Add one edge; duplicate (src, dst, kind) edges collapse."""
        if kind not in EDGE_KINDS:
            raise GraphError(f"unknown edge kind {kind!r}; known: {EDGE_KINDS}")
        for endpoint in (src, dst):
            if endpoint not in self._nodes:
                raise GraphError(f"edge endpoint {endpoint!r} is not a node")
        dedupe = (src, dst, kind)
        if dedupe in self._edge_seen:
            return
        self._edge_seen.add(dedupe)
        self._edges.append(GraphEdge(src=src, dst=dst, kind=kind, attrs=attrs))

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> dict[str, GraphNode]:
        return dict(self._nodes)

    @property
    def edges(self) -> list[GraphEdge]:
        return list(self._edges)

    def node(self, node_id: str) -> GraphNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no node {node_id!r}") from None

    def nodes_of_kind(self, *kinds: str) -> list[GraphNode]:
        """All nodes of the given kinds, in canonical order."""
        picked = [n for n in self._nodes.values() if n.kind in kinds]
        picked.sort(key=lambda n: (_NODE_RANK.get(n.kind, len(NODE_KINDS)), n.id))
        return picked

    def children(self, node_id: str, kind: str = "contains") -> list[GraphNode]:
        """Edge targets of ``node_id`` for one edge kind, canonical order."""
        targets = [e.dst for e in self._edges if e.src == node_id and e.kind == kind]
        out = [self.node(t) for t in targets]
        out.sort(key=lambda n: (_NODE_RANK.get(n.kind, len(NODE_KINDS)), n.id))
        return out

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.sorted_nodes())

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ #
    # validation + canonical serialisation                                #
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Re-assert the structural invariants (cheap; builders call it
        once after assembly, property tests call it adversarially)."""
        for edge in self._edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self._nodes:
                    raise GraphError(f"dangling edge endpoint {endpoint!r}")
            if edge.kind not in EDGE_KINDS:
                raise GraphError(f"unknown edge kind {edge.kind!r}")
        for node in self._nodes.values():
            if node.kind not in NODE_KINDS:
                raise GraphError(f"unknown node kind {node.kind!r}")

    def sorted_nodes(self) -> list[GraphNode]:
        return sorted(
            self._nodes.values(),
            key=lambda n: (_NODE_RANK.get(n.kind, len(NODE_KINDS)), n.id),
        )

    def sorted_edges(self) -> list[GraphEdge]:
        return sorted(self._edges, key=GraphEdge.sort_key)

    def as_dict(self) -> dict[str, Any]:
        self.validate()
        return {
            "schema": GRAPH_SCHEMA,
            "meta": dict(self.meta),
            "node_count": len(self._nodes),
            "edge_count": len(self._edges),
            "nodes": [n.as_dict() for n in self.sorted_nodes()],
            "edges": [e.as_dict() for e in self.sorted_edges()],
        }


def to_graph_json(graph: TopologyGraph, indent: int = 2) -> str:
    """The canonical JSON rendering (no trailing newline).

    ``sort_keys`` + the model's canonical node/edge ordering make this a
    pure function of graph content — the byte-identity the CLI and the
    serve layer both stand on.
    """
    return json.dumps(to_jsonable(graph.as_dict()), indent=indent, sort_keys=True)


_DOT_SHAPES = {
    "gpu": "box3d",
    "host": "house",
    "machine": "house",
    "fleet": "folder",
    "group": "folder",
    "memory": "cylinder",
    "cache": "box",
    "scratchpad": "component",
}
_DOT_STYLES = {"reaches": "dashed", "shares": "dotted"}


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _dot_quote(text: str) -> str:
    return f'"{_dot_escape(text)}"'


def to_dot(graph: TopologyGraph) -> str:
    """Deterministic Graphviz DOT rendering (no trailing newline).

    Same canonical ordering as the JSON, so the DOT bytes are equally
    stable; ``shares`` edges render undirected-looking (``dir=none``)
    because physical sharing has no direction.
    """
    lines = ["digraph mt4g {", "  rankdir=TB;", "  node [fontsize=10];"]
    for node in graph.sorted_nodes():
        shape = _DOT_SHAPES.get(node.kind, "ellipse")
        # \n inside a DOT label is a line break — added after escaping so
        # it survives as a break instead of a literal backslash-n.
        label = f'"{_dot_escape(node.name)}\\n({node.kind})"'
        lines.append(f"  {_dot_quote(node.id)} [label={label} shape={shape}];")
    for edge in graph.sorted_edges():
        attrs = [f"label={_dot_quote(edge.kind)}"]
        style = _DOT_STYLES.get(edge.kind)
        if style:
            attrs.append(f"style={style}")
        if edge.kind == "shares":
            attrs.append("dir=none")
        lines.append(
            f"  {_dot_quote(edge.src)} -> {_dot_quote(edge.dst)} "
            f"[{' '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)
