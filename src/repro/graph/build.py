"""Report → graph conversion: the one place topology structure is built.

:func:`build_graph` turns a :class:`~repro.core.report.TopologyReport`
into the canonical :class:`~repro.graph.model.TopologyGraph`; every
consumer that used to re-interpret the flat element dict (the sys-sage
tree, the drift diff, the serving layer, the CLI) now derives from this
one conversion.  The function is a pure function of report *content*:

* nothing from ``report.meta`` (cache provenance) or
  ``report.validation`` leaks into the graph, so a graph built from a
  cold discovery, a warm cache hit, or a peer-replicated blob is
  byte-identical once rendered;
* optional dynamic state (the current MIG partition) and optional host
  context are explicit arguments — absent by default, so the default
  build is exactly as reproducible as the report itself.

:func:`build_fleet_graph` is the catalog-level sibling: every cached
device under grouping nodes (vendor or microarchitecture), which is what
``GET /graph?group=…`` serves for fleet-wide views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.core.benchmarks.base import Source
from repro.core.report import ATTRIBUTES, TopologyReport
from repro.graph.host import HostTopology
from repro.graph.ids import element_kind, element_node_id, node_id
from repro.graph.model import GraphError, TopologyGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.catalog import CatalogEntry

__all__ = ["build_graph", "build_fleet_graph", "FLEET_GROUPINGS"]

#: Per-vendor compute terminology: (cluster name, SM/CU node kind).
_COMPUTE_KINDS = {"NVIDIA": ("GPC", "sm"), "AMD": ("SE", "cu")}

#: Elements one SM/CU reaches directly (the level-1 spaces).
_SM_LEVEL = {
    "NVIDIA": ("L1", "Texture", "Readonly", "ConstL1", "SharedMem"),
    "AMD": ("vL1", "sL1d", "LDS"),
}

#: Upstream candidates per element, nearest first: a ``reaches`` edge
#: goes to the first candidate the report actually discovered, so a
#: report without a ConstL1.5 (or an AMD part without an L3) still gets
#: a connected data path.
_UPSTREAM = {
    "NVIDIA": {
        "L1": ("L2", "DeviceMemory"),
        "Texture": ("L2", "DeviceMemory"),
        "Readonly": ("L2", "DeviceMemory"),
        "ConstL1": ("ConstL1.5", "L2", "DeviceMemory"),
        "ConstL1.5": ("L2", "DeviceMemory"),
        "L2": ("DeviceMemory",),
    },
    "AMD": {
        "vL1": ("L2", "DeviceMemory"),
        "sL1d": ("L2", "DeviceMemory"),
        "L2": ("L3", "DeviceMemory"),
        "L3": ("DeviceMemory",),
    },
}

#: Groupings ``build_fleet_graph`` (and ``GET /graph?group=…``) accepts.
FLEET_GROUPINGS = ("vendor", "microarchitecture")


def _element_attrs(report: TopologyReport, element: str) -> dict[str, Any]:
    """The element's attribute payloads, provenance included.

    Not-applicable attributes are omitted (absence of a fact is not a
    fact); unavailable ones are kept — "we tried and could not measure"
    is information a consumer should see.
    """
    out: dict[str, Any] = {}
    for attribute in ATTRIBUTES:
        av = report.memory[element].get(attribute)
        if av.source is Source.NOT_APPLICABLE:
            continue
        out[attribute] = av.as_dict()
    return out


def _derived_preset(report: TopologyReport) -> str:
    """Preset name recovered from the model string (catalog convention)."""
    vendor, model = report.general.vendor, report.general.model
    if model.startswith(f"{vendor} "):
        return model[len(vendor) + 1 :]
    return model


def _l2_segment_count(report: TopologyReport) -> int:
    if "L2" not in report.memory:
        return 0
    amount = report.memory["L2"].get("amount").value
    if isinstance(amount, bool) or not isinstance(amount, int):
        return 0
    return amount if amount >= 1 else 0


def build_graph(
    report: TopologyReport,
    mig_profile: str = "full",
    visible_sms: int | None = None,
    visible_dram_bytes: int | None = None,
    host: HostTopology | None = None,
) -> TopologyGraph:
    """The canonical graph of one device report.

    ``mig_profile`` / ``visible_sms`` / ``visible_dram_bytes`` overlay
    the *current* dynamic partition onto the static report (the sys-sage
    combination); callers without dynamic state — the serving layer, the
    CLI — pass nothing and get the full device.  ``host`` attaches
    best-effort machine context from :func:`repro.graph.host.collect_host`.
    """
    general, compute = report.general, report.compute
    vendor = general.vendor
    cluster_name, sm_kind = _COMPUTE_KINDS.get(vendor, ("Cluster", "sm"))
    sm_level = _SM_LEVEL.get(vendor, ())
    upstream = _UPSTREAM.get(vendor, {})

    graph = TopologyGraph(
        meta={
            "kind": "device",
            "preset": _derived_preset(report),
            "seed": int(report.seed),
            "mig_profile": mig_profile,
        }
    )

    # ---- the GPU --------------------------------------------------------
    gpu = graph.add_node(
        node_id("gpu", general.model),
        "gpu",
        general.model,
        vendor=vendor,
        microarchitecture=general.microarchitecture,
        compute_capability=general.compute_capability,
        clock_rate_hz=general.clock_rate_hz,
        memory_clock_rate_hz=general.memory_clock_rate_hz,
        memory_bus_width_bits=general.memory_bus_width_bits,
        mig_profile=mig_profile,
    )

    # ---- compute hierarchy: cluster -> SMs/CUs --------------------------
    sms = compute.num_sms if visible_sms is None else int(visible_sms)
    cluster = graph.add_node(
        node_id("cluster", cluster_name),
        "cluster",
        cluster_name,
        sms=sms,
        total_sms=compute.num_sms,
        warp_size=compute.warp_size,
    )
    graph.add_edge(gpu, cluster, "contains")
    sm_ids = []
    physical = compute.physical_cu_ids
    for i in range(sms):
        attrs: dict[str, Any] = {
            "cores": compute.cores_per_sm,
            "max_threads": compute.max_threads_per_sm,
        }
        if compute.simds_per_sm:
            attrs["simds"] = compute.simds_per_sm
        if i < len(physical):
            attrs["physical_id"] = physical[i]
        sm = graph.add_node(node_id(sm_kind, str(i)), sm_kind, str(i), **attrs)
        graph.add_edge(cluster, sm, "contains")
        sm_ids.append(sm)

    # ---- memory elements ------------------------------------------------
    element_ids: dict[str, str] = {}
    for element in report.memory:
        kind = element_kind(element)
        element_ids[element] = graph.add_node(
            element_node_id(element), kind, element, **_element_attrs(report, element)
        )
        graph.add_edge(gpu, element_ids[element], "contains")

    # DeviceMemory under MIG: the slice the current instance can address.
    if visible_dram_bytes is not None and "DeviceMemory" in element_ids:
        dram = graph.node(element_ids["DeviceMemory"])
        dram.attrs["visible_bytes"] = int(visible_dram_bytes)

    # L2 segments: the MT4G "Amount" made structural (Fig. 5's insight —
    # one SM reaches one segment, so the segment is a real component).
    segments = _l2_segment_count(report)
    if segments:
        size = report.memory["L2"].get("size").value
        seg_size = int(size) // segments if isinstance(size, (int, float)) else None
        for seg in range(segments):
            attrs = {"segment": seg}
            if seg_size is not None:
                attrs["size"] = seg_size
            seg_id = graph.add_node(
                element_node_id("L2", segment=seg), "cache", "L2", **attrs
            )
            graph.add_edge(element_ids["L2"], seg_id, "contains")

    # ---- data-path (reaches) edges --------------------------------------
    for sm in sm_ids:
        for element in sm_level:
            if element in element_ids:
                graph.add_edge(sm, element_ids[element], "reaches")
    for element, candidates in upstream.items():
        if element not in element_ids:
            continue
        for upper in candidates:
            if upper in element_ids:
                graph.add_edge(element_ids[element], element_ids[upper], "reaches")
                break

    # ---- physical sharing (shares) edges --------------------------------
    for element in report.memory:
        shared = report.memory[element].get("shared_with")
        if shared.unit != "elements" or not isinstance(shared.value, (tuple, list)):
            continue
        for partner in shared.value:
            if partner not in element_ids:
                continue
            # canonical direction: lexicographically smaller element
            # first, so A→B and B→A collapse to one edge.
            a, b = sorted((element, partner))
            graph.add_edge(element_ids[a], element_ids[b], "shares")

    # ---- optional host context ------------------------------------------
    if host is not None:
        _attach_host(graph, gpu, host)

    graph.validate()
    return graph


def _attach_host(graph: TopologyGraph, gpu: str, host: HostTopology) -> None:
    """Attach whatever the collectors managed to learn; never raises.

    The degradation counter rides in ``meta["host_degraded"]`` so a
    graph with no host nodes still records *why* (the acceptance
    criterion: collectors degrade, builds never fail).
    """
    graph.meta["host_degraded"] = dict(host.degraded)
    attrs: dict[str, Any] = {}
    if host.memory_bytes is not None:
        attrs["memory_bytes"] = host.memory_bytes
    host_id = graph.add_node(
        node_id("host", host.hostname or "unknown-host"),
        "host",
        host.hostname or "unknown-host",
        **attrs,
    )
    graph.add_edge(host_id, gpu, "contains")

    if host.cpu is not None:
        cpu = graph.add_node(node_id("cpu", "cpu0"), "cpu", "cpu0", **host.cpu)
        graph.add_edge(host_id, cpu, "contains")

    numa_ids: dict[int, str] = {}
    for entry in host.numa_nodes:
        index = entry.get("node")
        if not isinstance(index, int):
            continue
        numa_attrs = {k: v for k, v in entry.items() if k != "node"}
        numa_ids[index] = graph.add_node(
            node_id("numa", str(index)), "numa", str(index), **numa_attrs
        )
        graph.add_edge(host_id, numa_ids[index], "contains")

    for dev in host.pci_gpus:
        address = dev.get("address")
        if not address:
            continue
        pci_attrs = {k: v for k, v in dev.items() if k != "address"}
        pci = graph.add_node(node_id("pci", address), "pci", address, **pci_attrs)
        graph.add_edge(host_id, pci, "contains")
        # PCIe is how the machine reaches the accelerator; NUMA affinity
        # (when /sys knows it) localises that link.
        graph.add_edge(pci, gpu, "reaches")
        numa_node = dev.get("numa_node")
        if isinstance(numa_node, int) and numa_node in numa_ids:
            graph.add_edge(numa_ids[numa_node], pci, "reaches")


def build_fleet_graph(
    entries: "Iterable[CatalogEntry]", group: str = "vendor"
) -> TopologyGraph:
    """The catalog as one graph: fleet → group → device.

    ``group`` picks the grouping attribute (:data:`FLEET_GROUPINGS`).
    Only content-deterministic catalog fields become node attributes —
    recorded walls vary per instance and would break the byte-stability
    the rest of the graph layer guarantees.
    """
    if group not in FLEET_GROUPINGS:
        raise GraphError(
            f"unknown fleet grouping {group!r}; supported: {', '.join(FLEET_GROUPINGS)}"
        )
    ordered = sorted(entries, key=lambda e: (e.preset, e.seed, e.key))
    graph = TopologyGraph(meta={"kind": "fleet", "group_by": group})
    root = graph.add_node(
        node_id("fleet", "catalog"), "fleet", "catalog", devices=len(ordered)
    )
    counts: dict[str, int] = {}
    for entry in ordered:
        counts[getattr(entry, group)] = counts.get(getattr(entry, group), 0) + 1
    group_ids: dict[str, str] = {}
    for name in sorted(counts):
        group_ids[name] = graph.add_node(
            node_id("group", name), "group", name, devices=counts[name]
        )
        graph.add_edge(root, group_ids[name], "contains")
    for entry in ordered:
        device = graph.add_node(
            # key[:12] disambiguates same (preset, seed) discoveries that
            # differ elsewhere in identity (validated vs not, carveout).
            node_id("gpu", entry.model, preset=entry.preset, seed=entry.seed,
                    key=entry.key[:12]),
            "gpu",
            entry.model,
            preset=entry.preset,
            seed=entry.seed,
            vendor=entry.vendor,
            microarchitecture=entry.microarchitecture,
            verdict=entry.verdict,
            key=entry.key,
            elements=list(entry.elements),
        )
        graph.add_edge(group_ids[getattr(entry, group)], device, "contains")
    graph.validate()
    return graph
