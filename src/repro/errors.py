"""Exception hierarchy for the MT4G reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.

The distinction between :class:`BenchmarkInconclusiveError` and
:class:`BenchmarkUnsupportedError` mirrors the paper's error-honesty policy
(Section V): a benchmark that cannot produce a trustworthy answer reports
*no result* (or zero confidence), never a fabricated one.

A second axis classifies failures as **transient** (worth retrying: a
crashed worker, a stalled filesystem, an injected chaos fault) versus
**permanent** (retrying cannot help: an unknown preset, an inconsistent
spec).  :func:`is_transient` is the single classification point the
fleet's retry loop and the serving queue's circuit breaker consult, so
the two layers can never disagree about what deserves another attempt.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TransientError(ReproError):
    """A failure that a bounded retry has a real chance of clearing.

    Raise (or subclass) this for infrastructure-flavoured trouble —
    crashed workers, timeouts, racing filesystems — never for input
    errors, which retrying would only repeat.
    """


class DeadlineExceededError(TransientError):
    """An operation ran past its configured deadline."""


class WorkerCrashError(TransientError):
    """A discovery worker died (or was made to die) mid-measurement."""


class CircuitOpenError(TransientError):
    """A per-key circuit breaker is open: the key failed repeatedly and
    new attempts are refused until the cooldown elapses."""


class InjectedFaultError(ReproError):
    """Base class for faults raised by the deterministic fault-injection
    plane (:mod:`repro.faults`) — never raised in production runs."""


class InjectedTransientError(InjectedFaultError, TransientError):
    """An injected fault that retry logic is expected to absorb."""


class InjectedPermanentError(InjectedFaultError):
    """An injected fault that retry logic is expected to give up on."""


#: Exception types outside our hierarchy that still signal retryable,
#: infrastructure-flavoured trouble (a worker process vanishing, a
#: filesystem stall, a dropped pipe to a pool worker).
_TRANSIENT_FOREIGN = (
    BrokenExecutor,
    ConnectionError,
    EOFError,
    InterruptedError,
    OSError,
    TimeoutError,
)


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is worth retrying (see module docstring).

    :class:`ReproError` subclasses are transient only when they opt in
    via :class:`TransientError` — a library error like an unknown preset
    is a caller mistake, not weather.  Foreign exceptions are transient
    only for the infrastructure shapes in ``_TRANSIENT_FOREIGN``.
    """
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, _TRANSIENT_FOREIGN)


class SpecError(ReproError):
    """A hardware specification is inconsistent or incomplete."""


class UnknownGPUError(SpecError, KeyError):
    """Requested GPU preset does not exist in the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        msg = f"unknown GPU preset {name!r}"
        if available:
            msg += f"; available: {', '.join(available)}"
        super().__init__(msg)


class SimulationError(ReproError):
    """The GPU simulator was driven into an invalid state."""


class SchedulingError(SimulationError):
    """A kernel/thread could not be scheduled on the requested resource.

    Raised e.g. by the P6000 warp-scheduling quirk (paper Section V, item 2)
    and by attempts to pin thread blocks to CU ids on virtualized devices
    (MI300X, Section V item 1).
    """


class AllocationError(SimulationError):
    """A device-memory allocation exceeded the available capacity."""


class APIUnavailableError(ReproError):
    """The emulated vendor API does not expose the requested attribute.

    This reproduces the coverage gaps of the real vendor interfaces
    (paper Table I): callers are expected to fall back to microbenchmarks.
    """


class BenchmarkError(ReproError):
    """Base class for benchmark-level failures."""


class BenchmarkInconclusiveError(BenchmarkError):
    """The measurement completed but no statistically sound answer exists.

    The orchestrator converts this into a result with ``confidence == 0.0``
    (e.g. the Constant L1.5 size capped by the 64 KiB constant-array limit).
    """


class BenchmarkUnsupportedError(BenchmarkError):
    """The benchmark cannot run at all on this device configuration.

    The orchestrator converts this into a *no result* entry (e.g. AMD L3
    load latency on CDNA3, or the MI300X CU-id sharing benchmark under
    virtualization).
    """


class OutputError(ReproError):
    """A report writer failed to serialize results."""
