"""MT4G reproduction: auto-discovery of GPU compute and memory topologies.

Reproduces *MT4G: A Tool for Reliable Auto-Discovery of NVIDIA and AMD
GPU Compute and Memory Topologies* (Vanecek et al., SC Workshops 2025)
as a pure-Python library.  The physical GPUs are replaced by a simulated
substrate (:mod:`repro.gpusim`) that exhibits the timing behaviour the
tool's microbenchmarks probe; everything above the timing layer — the
benchmark suite, the Kolmogorov-Smirnov auto-evaluation, the report
model and the three integration use-cases — follows the paper.

Quickstart::

    from repro import MT4G, SimulatedGPU

    device = SimulatedGPU.from_preset("H100-80", seed=42)
    report = MT4G(device).discover()
    print(report.attribute("L1", "size").rendered())
"""

from repro.cache.store import DiscoveryCache
from repro.core.report import TopologyReport
from repro.core.tool import MT4G
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.presets import available_presets, get_preset

__version__ = "1.0.0"

__all__ = [
    "MT4G",
    "DiscoveryCache",
    "SimulatedGPU",
    "TopologyReport",
    "available_presets",
    "get_preset",
    "__version__",
]
