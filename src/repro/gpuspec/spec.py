"""Dataclasses describing a GPU's compute and memory topology.

The model follows the paper's Section II-A / III decomposition:

* **compute** — SMs/CUs, cores, warps, register files, physical CU ids;
* **caches** — one :class:`CacheSpec` per *logical* memory space
  (L1, Texture, Readonly, Constant L1, Constant L1.5, L2, L3, vL1, sL1d).
  Logical spaces that share silicon (paper Section IV-G) carry the same
  ``physical_id`` — the simulator instantiates one physical cache per
  distinct id and routes all aliased spaces through it;
* **scratchpads** — Shared Memory / LDS (directly addressed, no tags);
* **memory** — device memory capacity, latency and peak bandwidths;
* **noise** — the measurement-disturbance model (clock overhead, jitter,
  outlier spikes) that the statistical evaluation must survive;
* **quirks** — per-device oddities the paper reports in Section V
  (virtualized MI300X, P6000 warp-scheduling bug, flaky L1/CL1 sharing).

All sizes are bytes, latencies are GPU clock cycles, bandwidths are
bytes/second, frequencies are Hz.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SpecError
from repro.units import is_power_of_two

__all__ = [
    "Vendor",
    "CacheScope",
    "Quirk",
    "CacheSpec",
    "ScratchpadSpec",
    "ComputeSpec",
    "MemorySpec",
    "NoiseSpec",
    "GPUSpec",
]


class Vendor(enum.Enum):
    """GPU vendor.  The paper's syntax ``<NVIDIA term>/<AMD term>`` maps here."""

    NVIDIA = "NVIDIA"
    AMD = "AMD"


class CacheScope(enum.Enum):
    """Where independent instances of a cache live (paper Table I, 'Amount per')."""

    SM = "sm"  # one (or more segments) per SM/CU
    GPU = "gpu"  # one (or more segments) per GPU
    CU_GROUP = "cu_group"  # AMD sL1d: shared by a small group of CUs


class Quirk(enum.Enum):
    """Device-level oddities reproduced from the paper's Section V."""

    #: MI300X: virtualized environment; thread blocks cannot be pinned to
    #: specific CU ids, so the sL1d CU-sharing benchmark cannot run.
    VIRTUALIZED = "virtualized"
    #: P6000 (Pascal): a thread cannot be scheduled on warp 3 (of 4),
    #: breaking the L1 Amount benchmark.
    WARP_SCHEDULING_BUG = "warp_scheduling_bug"
    #: P6000 (Pascal): the L1 <-> Constant L1 physical-sharing benchmark
    #: sometimes sees spurious cross-eviction and reports sharing.
    FLAKY_L1_CONST_SHARING = "flaky_l1_const_sharing"


@dataclass(frozen=True)
class CacheSpec:
    """One *logical* cache space and the physical structure backing it.

    ``size`` is the capacity of a **single** physical instance (one segment).
    ``segments`` counts independent instances inside the scope — e.g. the
    NVIDIA A100's API-visible 40 MB L2 is two independent 20 MB segments
    (paper footnote 13), and some SMs host multiple isolated L1 segments
    (paper Section IV-F).
    """

    name: str
    size: int
    line_size: int
    fetch_granularity: int
    ways: int
    load_latency: float
    scope: CacheScope = CacheScope.SM
    segments: int = 1
    #: logical spaces sharing one physical cache carry the same id
    #: (e.g. "l1tex" on post-Pascal NVIDIA for L1/Texture/Readonly).
    physical_id: str = ""
    #: attributes exposed by a vendor API instead of benchmarking (Table I).
    size_via_api: bool = False
    line_size_via_api: bool = False
    segments_via_api: bool = False
    #: the paper only measures bandwidth on higher-level caches / device
    #: memory (Table I dagger footnote).
    bandwidth_measured: bool = False
    #: achieved fraction of the peak bandwidth MT4G's untuned stream kernel
    #: reaches on this level (paper Section V: ~20% below reports on L2).
    read_bandwidth: float = 0.0
    write_bandwidth: float = 0.0
    #: AMD sL1d: how many CUs share one physical cache (2 or 3, cf. IV-H).
    cu_share_group: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SpecError(f"{self.name}: size must be positive, got {self.size}")
        if self.line_size <= 0 or not is_power_of_two(self.line_size):
            raise SpecError(f"{self.name}: line_size must be a positive power of two")
        if self.fetch_granularity <= 0 or self.line_size % self.fetch_granularity:
            raise SpecError(
                f"{self.name}: fetch_granularity must divide line_size "
                f"({self.fetch_granularity} vs {self.line_size})"
            )
        if self.ways <= 0:
            raise SpecError(f"{self.name}: ways must be positive")
        if self.size % (self.line_size * self.ways):
            raise SpecError(
                f"{self.name}: size {self.size} not divisible by "
                f"line_size*ways = {self.line_size * self.ways}"
            )
        if self.load_latency <= 0:
            raise SpecError(f"{self.name}: load_latency must be positive")
        if self.segments <= 0:
            raise SpecError(f"{self.name}: segments must be positive")

    @property
    def effective_physical_id(self) -> str:
        """Physical identity; defaults to the logical name when unshared."""
        return self.physical_id or self.name

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.ways)

    @property
    def sectors_per_line(self) -> int:
        return self.line_size // self.fetch_granularity


@dataclass(frozen=True)
class ScratchpadSpec:
    """Directly-addressed scratchpad: NVIDIA Shared Memory / AMD LDS."""

    name: str
    size: int
    load_latency: float
    size_via_api: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SpecError(f"{self.name}: size must be positive")
        if self.load_latency <= 0:
            raise SpecError(f"{self.name}: load_latency must be positive")


@dataclass(frozen=True)
class ComputeSpec:
    """Compute-resource information (paper Section III-B)."""

    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    max_threads_per_sm: int
    registers_per_block: int
    registers_per_sm: int
    #: GPCs (NVIDIA) / XCDs (AMD); L2 segmentation follows this on AMD.
    num_clusters: int = 1
    #: AMD only — SIMD units per CU (the paper reports "warps/SIMD per
    #: SM/CU"); 0 means not applicable (NVIDIA reports warps instead).
    simds_per_sm: int = 0
    #: AMD only — logical CU index -> physical CU id.  The MI210 exposes 104
    #: active CUs with physical ids drawn from a 128-CU die (paper fn. 15).
    physical_cu_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for fname in (
            "num_sms",
            "cores_per_sm",
            "warp_size",
            "max_blocks_per_sm",
            "max_threads_per_block",
            "max_threads_per_sm",
            "registers_per_block",
            "registers_per_sm",
            "num_clusters",
        ):
            if getattr(self, fname) <= 0:
                raise SpecError(f"ComputeSpec.{fname} must be positive")
        if self.cores_per_sm % self.warp_size:
            raise SpecError("cores_per_sm must be a multiple of warp_size")
        if self.simds_per_sm < 0:
            raise SpecError("simds_per_sm must be non-negative")
        if self.physical_cu_ids and len(self.physical_cu_ids) != self.num_sms:
            raise SpecError(
                "physical_cu_ids must provide exactly one id per logical CU "
                f"({len(self.physical_cu_ids)} ids for {self.num_sms} CUs)"
            )

    @property
    def warps_per_sm(self) -> int:
        return self.cores_per_sm // self.warp_size

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size


@dataclass(frozen=True)
class MemorySpec:
    """Device (main) memory attributes."""

    size: int
    load_latency: float
    read_bandwidth: float
    write_bandwidth: float
    memory_clock_hz: float
    bus_width_bits: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SpecError("MemorySpec.size must be positive")
        if self.load_latency <= 0:
            raise SpecError("MemorySpec.load_latency must be positive")
        if min(self.read_bandwidth, self.write_bandwidth) <= 0:
            raise SpecError("MemorySpec bandwidths must be positive")
        if self.memory_clock_hz <= 0 or self.bus_width_bits <= 0:
            raise SpecError("MemorySpec clock/bus width must be positive")


@dataclass(frozen=True)
class NoiseSpec:
    """Measurement-disturbance model.

    The paper (Section IV-A, footnote 7) notes that the clock-read overhead
    is constant and "affects neither the K-S test nor the tendencies"; the
    jitter and outliers are what the K-S machinery and the outlier-widening
    step (Section IV-B workflow step 3) are designed to survive.
    """

    measurement_overhead: float = 6.0  # constant cycles added to every sample
    jitter_sigma: float = 1.5  # std-dev of Gaussian timing noise (cycles)
    outlier_probability: float = 0.002  # chance of a spurious spike per load
    outlier_magnitude: float = 220.0  # spike height (cycles)

    def __post_init__(self) -> None:
        if self.measurement_overhead < 0 or self.jitter_sigma < 0:
            raise SpecError("noise parameters must be non-negative")
        if not 0.0 <= self.outlier_probability < 1.0:
            raise SpecError("outlier_probability must be in [0, 1)")


@dataclass(frozen=True)
class GPUSpec:
    """Complete description of one GPU model."""

    name: str
    vendor: Vendor
    microarchitecture: str
    chip: str
    compute_capability: str
    core_clock_hz: float
    compute: ComputeSpec
    caches: tuple[CacheSpec, ...]
    scratchpad: ScratchpadSpec
    memory: MemorySpec
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    quirks: frozenset[Quirk] = frozenset()
    #: effective L1 size per cudaDeviceSetCacheConfig option (paper fn. 17);
    #: keys: "PreferL1" (default), "PreferShared", "PreferEqual".
    l1_carveout: dict[str, int] = field(default_factory=dict)
    #: MIG profile name -> (compute fraction numerator, memory slice count);
    #: empty when the device does not support MIG.
    mig_profiles: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: peak compute throughput per datatype in FLOP/s (or OP/s for int):
    #: e.g. {"fp64": ..., "fp32": ..., "fp16": ..., "int32": ...,
    #: "tensor_fp16": ...}.  Consumed by the Section VII extension that
    #: benchmarks FLOPS and tensor engines; empty = extension unavailable.
    compute_throughput: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.core_clock_hz <= 0:
            raise SpecError("core_clock_hz must be positive")
        names = [c.name for c in self.caches]
        if len(names) != len(set(names)):
            raise SpecError(f"duplicate cache names in {self.name}: {names}")
        # Logical spaces sharing a physical id must agree on the physical
        # structure (capacity, geometry) — they are the same silicon.
        by_phys: dict[str, CacheSpec] = {}
        for c in self.caches:
            pid = c.effective_physical_id
            if pid in by_phys:
                ref = by_phys[pid]
                if (c.size, c.line_size, c.ways, c.segments) != (
                    ref.size,
                    ref.line_size,
                    ref.ways,
                    ref.segments,
                ):
                    raise SpecError(
                        f"{self.name}: caches {ref.name!r} and {c.name!r} share "
                        f"physical id {pid!r} but differ in geometry"
                    )
            else:
                by_phys[pid] = c

    def cache(self, name: str) -> CacheSpec:
        """Look up a cache spec by logical name (raises ``SpecError``)."""
        for c in self.caches:
            if c.name == name:
                return c
        raise SpecError(f"{self.name} has no cache named {name!r}")

    def has_cache(self, name: str) -> bool:
        return any(c.name == name for c in self.caches)

    @property
    def cache_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.caches)

    def effective_l1_size(self, cache_config: str = "PreferL1") -> int:
        """L1 capacity under a runtime carveout configuration.

        On NVIDIA the L1 and Shared Memory share one SRAM block whose split
        is a runtime option (paper fn. 17); AMD vL1 is fixed.
        """
        if self.l1_carveout:
            try:
                return self.l1_carveout[cache_config]
            except KeyError:
                raise SpecError(
                    f"{self.name}: unknown cache config {cache_config!r}; "
                    f"expected one of {sorted(self.l1_carveout)}"
                ) from None
        primary = "L1" if self.vendor is Vendor.NVIDIA else "vL1"
        return self.cache(primary).size

    def sharing_groups(self) -> dict[str, tuple[str, ...]]:
        """Map physical id -> logical cache names routed through it."""
        groups: dict[str, list[str]] = {}
        for c in self.caches:
            groups.setdefault(c.effective_physical_id, []).append(c.name)
        return {pid: tuple(names) for pid, names in groups.items()}
