"""Declarative GPU hardware specifications.

A :class:`~repro.gpuspec.spec.GPUSpec` is the ground truth the simulator is
built from.  MT4G itself never reads a spec directly — it only sees the
emulated vendor APIs (:mod:`repro.api`) and the timing behaviour of the
simulated device (:mod:`repro.gpusim`), exactly as the real tool only sees
driver calls and clock readings.

Presets for the ten validation GPUs of the paper's Table II live in
:mod:`repro.gpuspec.presets`.
"""

from repro.gpuspec.spec import (
    CacheScope,
    CacheSpec,
    ComputeSpec,
    GPUSpec,
    MemorySpec,
    NoiseSpec,
    Quirk,
    ScratchpadSpec,
    Vendor,
)
from repro.gpuspec.presets import available_presets, get_preset

__all__ = [
    "CacheScope",
    "CacheSpec",
    "ComputeSpec",
    "GPUSpec",
    "MemorySpec",
    "NoiseSpec",
    "Quirk",
    "ScratchpadSpec",
    "Vendor",
    "available_presets",
    "get_preset",
]
