"""Preset registry: the ten validation GPUs of paper Table II plus
synthetic test devices.

>>> from repro.gpuspec import get_preset, available_presets
>>> get_preset("H100-80").vendor
<Vendor.NVIDIA: 'NVIDIA'>
"""

from __future__ import annotations

from repro.errors import UnknownGPUError
from repro.gpuspec.presets.amd import AMD_PRESETS, CORES_PER_CU
from repro.gpuspec.presets.nvidia import CORES_PER_SM, NVIDIA_PRESETS
from repro.gpuspec.presets.testing import TESTING_PRESETS
from repro.gpuspec.spec import GPUSpec

__all__ = [
    "available_presets",
    "get_preset",
    "PAPER_PRESETS",
    "CORES_PER_SM",
    "CORES_PER_CU",
]

#: The ten machines of paper Table II, in the paper's order.
PAPER_PRESETS: dict[str, GPUSpec] = {**NVIDIA_PRESETS, **AMD_PRESETS}

_ALL: dict[str, GPUSpec] = {**PAPER_PRESETS, **TESTING_PRESETS}


def available_presets(include_testing: bool = False) -> tuple[str, ...]:
    """Names of the registered presets (paper GPUs first)."""
    if include_testing:
        return tuple(_ALL)
    return tuple(PAPER_PRESETS)


def get_preset(name: str) -> GPUSpec:
    """Fetch a preset by name; raises :class:`UnknownGPUError` otherwise."""
    try:
        return _ALL[name]
    except KeyError:
        raise UnknownGPUError(name, tuple(_ALL)) from None
