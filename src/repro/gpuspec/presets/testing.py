"""Small synthetic GPU presets for fast unit and property tests.

These are not real devices.  They exist so that the whole discovery
pipeline can run in milliseconds and so that machinery the ten paper
presets never trigger (multiple L1 segments per SM, a Constant L1.5 below
the 64 KiB probe limit, a tiny CDNA3-style L3) is exercised by tests.
"""

from __future__ import annotations

from repro.gpuspec.spec import (
    CacheScope,
    CacheSpec,
    ComputeSpec,
    GPUSpec,
    MemorySpec,
    NoiseSpec,
    ScratchpadSpec,
    Vendor,
)
from repro.units import GiB, KiB

GiBps = 1024.0**3

_QUIET = NoiseSpec(
    measurement_overhead=6.0,
    jitter_sigma=0.5,
    outlier_probability=0.001,
    outlier_magnitude=150.0,
)


def _test_nv(name: str, l1_segments: int, l2_segments: int) -> GPUSpec:
    l1_common = dict(
        size=4 * KiB,
        line_size=64,
        fetch_granularity=32,
        ways=2,
        scope=CacheScope.SM,
        segments=l1_segments,
        physical_id="l1tex",
    )
    return GPUSpec(
        name=name,
        vendor=Vendor.NVIDIA,
        microarchitecture="Hopper",
        chip="TEST",
        compute_capability="9.0",
        core_clock_hz=1.0e9,
        compute=ComputeSpec(
            num_sms=2,
            cores_per_sm=64,
            warp_size=32,
            max_blocks_per_sm=8,
            max_threads_per_block=256,
            max_threads_per_sm=512,
            registers_per_block=32768,
            registers_per_sm=32768,
            num_clusters=2,
        ),
        caches=(
            CacheSpec(
                name="L1",
                load_latency=30.0,
                read_bandwidth=200.0 * GiBps,
                write_bandwidth=150.0 * GiBps,
                **l1_common,
            ),
            CacheSpec(name="Texture", load_latency=32.0, **l1_common),
            CacheSpec(name="Readonly", load_latency=31.0, **l1_common),
            CacheSpec(
                name="ConstL1",
                size=1 * KiB,
                line_size=32,
                fetch_granularity=32,
                ways=2,
                load_latency=20.0,
                scope=CacheScope.SM,
            ),
            # Below the 64 KiB constant-array limit, so the size benchmark
            # CAN pin it down on this device (unlike the real presets).
            CacheSpec(
                name="ConstL1.5",
                size=8 * KiB,
                line_size=64,
                fetch_granularity=64,
                ways=4,
                load_latency=60.0,
                scope=CacheScope.SM,
            ),
            CacheSpec(
                name="L2",
                size=(64 // l2_segments) * KiB,
                line_size=64,
                fetch_granularity=32,
                ways=4,
                load_latency=100.0,
                scope=CacheScope.GPU,
                segments=l2_segments,
                size_via_api=True,
                bandwidth_measured=True,
                read_bandwidth=100.0 * GiBps,
                write_bandwidth=80.0 * GiBps,
            ),
        ),
        scratchpad=ScratchpadSpec(name="SharedMem", size=8 * KiB, load_latency=15.0),
        memory=MemorySpec(
            size=1 * GiB,
            load_latency=300.0,
            read_bandwidth=50.0 * GiBps,
            write_bandwidth=45.0 * GiBps,
            memory_clock_hz=1.0e9,
            bus_width_bits=256,
        ),
        noise=_QUIET,
        mig_profiles={"1g": (1, 1), "2g": (2, 2)},
        compute_throughput={
            "fp64": 0.5e12,
            "fp32": 1.0e12,
            "tensor_fp16": 4.0e12,
        },
    )


TEST_NV = _test_nv("TestGPU-NV", l1_segments=1, l2_segments=1)
TEST_NV_2SEG = _test_nv("TestGPU-NV-2SEG", l1_segments=2, l2_segments=2)


def _test_amd(name: str, with_l3: bool) -> GPUSpec:
    caches = [
        CacheSpec(
            name="vL1",
            size=4 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=2,
            load_latency=40.0,
            scope=CacheScope.SM,
        ),
        CacheSpec(
            name="sL1d",
            size=2 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=2,
            load_latency=25.0,
            scope=CacheScope.CU_GROUP,
            cu_share_group=2,
        ),
        CacheSpec(
            name="L2",
            size=16 * KiB if with_l3 else 32 * KiB,
            line_size=128,
            fetch_granularity=64,
            ways=4,
            load_latency=80.0,
            scope=CacheScope.GPU,
            segments=2 if with_l3 else 1,
            size_via_api=True,
            line_size_via_api=True,
            segments_via_api=True,
            bandwidth_measured=True,
            read_bandwidth=120.0 * GiBps,
            write_bandwidth=90.0 * GiBps,
        ),
    ]
    if with_l3:
        caches.append(
            CacheSpec(
                name="L3",
                size=128 * KiB,
                line_size=128,
                fetch_granularity=64,
                ways=4,
                load_latency=150.0,
                scope=CacheScope.GPU,
                segments=1,
                size_via_api=True,
                line_size_via_api=True,
                segments_via_api=True,
                bandwidth_measured=True,
                read_bandwidth=90.0 * GiBps,
                write_bandwidth=70.0 * GiBps,
            )
        )
    return GPUSpec(
        name=name,
        vendor=Vendor.AMD,
        microarchitecture="CDNA3" if with_l3 else "CDNA2",
        chip="TEST",
        compute_capability="gfxtest",
        core_clock_hz=1.0e9,
        compute=ComputeSpec(
            num_sms=8,
            cores_per_sm=64,
            warp_size=64,
            max_blocks_per_sm=8,
            max_threads_per_block=256,
            max_threads_per_sm=512,
            registers_per_block=32768,
            registers_per_sm=32768,
            num_clusters=2 if with_l3 else 1,
            simds_per_sm=4,
            # 8 active CUs on a 12-CU die; CUs 2 and 6 have fused-off sL1d
            # partners (3 and 7), giving them exclusive sL1d capacity.
            physical_cu_ids=(0, 1, 2, 4, 5, 6, 8, 9),
        ),
        caches=tuple(caches),
        scratchpad=ScratchpadSpec(name="LDS", size=4 * KiB, load_latency=12.0),
        memory=MemorySpec(
            size=1 * GiB,
            load_latency=250.0,
            read_bandwidth=60.0 * GiBps,
            write_bandwidth=50.0 * GiBps,
            memory_clock_hz=1.0e9,
            bus_width_bits=512,
        ),
        noise=_QUIET,
    )


TEST_AMD = _test_amd("TestGPU-AMD", with_l3=False)
TEST_AMD_L3 = _test_amd("TestGPU-AMD-L3", with_l3=True)

TESTING_PRESETS = {
    spec.name: spec for spec in (TEST_NV, TEST_NV_2SEG, TEST_AMD, TEST_AMD_L3)
}
