"""NVIDIA GPU presets for the seven validation machines of paper Table II.

Attribute values come, in the paper's order of preference, from: the
paper's own Table III (H100-80), official whitepapers, the Jia et al. and
Luo et al. microbenchmarking studies the paper cites for validation, and
chipsandcheese measurements.  Where a number is genuinely unpublished we
pick a plausible value and note it — the reproduction target is the
behavioural *shape* (cliffs, sharing, segmentation), not the digits.

Conventions (see :mod:`repro.gpuspec.spec`):

* ``L1``/``Texture``/``Readonly`` share physical id ``"l1tex"`` on every
  microarchitecture from Pascal onward (paper Table III footnote 1).
* ``size`` of the L1 family is the *effective* L1 capacity under the
  default ``PreferL1`` carveout (paper footnote 17); other carveouts are in
  ``l1_carveout``.
* L2 ``size`` is per *segment*; the vendor API reports
  ``segments * size`` (paper footnote 13: A100's 40 MB is 2 x 20 MB).
* Constant L1.5 ``size`` is the true hardware size; MT4G can only probe up
  to the 64 KiB constant-array limit (paper Section III-C).
"""

from __future__ import annotations

from repro.gpuspec.spec import (
    CacheScope,
    CacheSpec,
    ComputeSpec,
    GPUSpec,
    MemorySpec,
    NoiseSpec,
    Quirk,
    ScratchpadSpec,
    Vendor,
)
from repro.units import GiB, KiB, MiB

TiBps = 1024.0**4  # bytes/second per TiB/s
GiBps = 1024.0**3

#: Microarchitecture-specific CUDA cores per SM (the paper's Section III-B
#: "internal lookup table"); consumed by the tool, not by the simulator.
CORES_PER_SM = {
    "Pascal": 128,
    "Volta": 64,
    "Turing": 64,
    "Ampere": 64,
    "Hopper": 128,
}


def _nv_l1_family(
    size: int,
    line: int,
    fg: int,
    lat_l1: float,
    lat_tex: float,
    lat_ro: float,
    segments: int = 1,
    l1_read_bw: float = 0.0,
    l1_write_bw: float = 0.0,
) -> tuple[CacheSpec, CacheSpec, CacheSpec]:
    """L1/Texture/Readonly triple sharing the unified ``l1tex`` silicon.

    ``l1_read_bw``/``l1_write_bw`` are optional aggregate figures for the
    Section VII low-level-bandwidth extension; ``bandwidth_measured``
    stays False so the default pipeline keeps Table I's dagger semantics.
    """
    common = dict(
        size=size,
        line_size=line,
        fetch_granularity=fg,
        ways=4,
        scope=CacheScope.SM,
        segments=segments,
        physical_id="l1tex",
    )
    return (
        CacheSpec(
            name="L1",
            load_latency=lat_l1,
            read_bandwidth=l1_read_bw,
            write_bandwidth=l1_write_bw,
            **common,
        ),
        CacheSpec(name="Texture", load_latency=lat_tex, **common),
        CacheSpec(name="Readonly", load_latency=lat_ro, **common),
    )


def _nv_constant_pair(
    cl1_size: int,
    cl1_lat: float,
    cl15_size: int,
    cl15_lat: float,
    cl1_line: int = 64,
) -> tuple[CacheSpec, CacheSpec]:
    return (
        CacheSpec(
            name="ConstL1",
            size=cl1_size,
            line_size=cl1_line,
            fetch_granularity=cl1_line,
            ways=4,
            load_latency=cl1_lat,
            scope=CacheScope.SM,
        ),
        CacheSpec(
            name="ConstL1.5",
            size=cl15_size,
            line_size=256,
            fetch_granularity=256,
            ways=8,
            load_latency=cl15_lat,
            scope=CacheScope.SM,
        ),
    )


def _nv_l2(
    segment_size: int,
    segments: int,
    line: int,
    fg: int,
    lat: float,
    read_bw: float,
    write_bw: float,
) -> CacheSpec:
    return CacheSpec(
        name="L2",
        size=segment_size,
        line_size=line,
        fetch_granularity=fg,
        ways=16,
        load_latency=lat,
        scope=CacheScope.GPU,
        segments=segments,
        size_via_api=True,
        bandwidth_measured=True,
        read_bandwidth=read_bw,
        write_bandwidth=write_bw,
    )


P6000 = GPUSpec(
    name="P6000",
    vendor=Vendor.NVIDIA,
    microarchitecture="Pascal",
    chip="GP102",
    compute_capability="6.1",
    core_clock_hz=1.645e9,
    compute=ComputeSpec(
        num_sms=30,
        cores_per_sm=128,
        warp_size=32,
        max_blocks_per_sm=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=6,
    ),
    caches=(
        # Pascal: fixed 24 KiB unified L1/texture per SM, no carveout.
        *_nv_l1_family(24 * KiB, 128, 32, lat_l1=82.0, lat_tex=86.0, lat_ro=84.0),
        *_nv_constant_pair(2 * KiB, 26.0, 64 * KiB, 96.0),
        _nv_l2(3 * MiB, 1, 128, 32, 216.0, 1.05 * TiBps, 0.95 * TiBps),
    ),
    scratchpad=ScratchpadSpec(name="SharedMem", size=96 * KiB, load_latency=24.0),
    memory=MemorySpec(
        size=24 * GiB,
        load_latency=485.0,
        read_bandwidth=0.30 * TiBps,
        write_bandwidth=0.28 * TiBps,
        memory_clock_hz=1.251e9,
        bus_width_bits=384,
    ),
    quirks=frozenset({Quirk.WARP_SCHEDULING_BUG, Quirk.FLAKY_L1_CONST_SHARING}),
)


V100 = GPUSpec(
    name="V100",
    vendor=Vendor.NVIDIA,
    microarchitecture="Volta",
    chip="GV100",
    compute_capability="7.0",
    core_clock_hz=1.53e9,
    compute=ComputeSpec(
        num_sms=80,
        cores_per_sm=64,
        warp_size=32,
        max_blocks_per_sm=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=6,
    ),
    caches=(
        # Paper Section IV-D: the V100's default transaction is two sectors
        # = 64 B, hence the 64 B fetch granularity on the L1 family.
        *_nv_l1_family(120 * KiB, 128, 64, lat_l1=28.0, lat_tex=32.0, lat_ro=30.0),
        *_nv_constant_pair(2 * KiB, 27.0, 64 * KiB, 89.0),
        _nv_l2(6 * MiB, 1, 64, 32, 193.0, 1.90 * TiBps, 1.40 * TiBps),
    ),
    scratchpad=ScratchpadSpec(name="SharedMem", size=96 * KiB, load_latency=19.0),
    memory=MemorySpec(
        size=16 * GiB,
        load_latency=437.0,
        read_bandwidth=0.72 * TiBps,
        write_bandwidth=0.68 * TiBps,
        memory_clock_hz=0.877e9,
        bus_width_bits=4096,
    ),
    l1_carveout={
        "PreferL1": 120 * KiB,
        "PreferShared": 32 * KiB,
        "PreferEqual": 64 * KiB,
    },
    compute_throughput={
        "fp64": 7.8e12,
        "fp32": 15.7e12,
        "fp16": 31.3e12,
        "tensor_fp16": 125e12,
    },
)


T1000 = GPUSpec(
    name="T1000",
    vendor=Vendor.NVIDIA,
    microarchitecture="Turing",
    chip="TU117",
    compute_capability="7.5",
    core_clock_hz=1.395e9,
    compute=ComputeSpec(
        num_sms=14,
        cores_per_sm=64,
        warp_size=32,
        max_blocks_per_sm=16,
        max_threads_per_block=1024,
        max_threads_per_sm=1024,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=2,
    ),
    caches=(
        *_nv_l1_family(48 * KiB, 128, 32, lat_l1=32.0, lat_tex=35.0, lat_ro=33.0),
        *_nv_constant_pair(2 * KiB, 25.0, 64 * KiB, 92.0),
        _nv_l2(1 * MiB, 1, 64, 32, 188.0, 0.40 * TiBps, 0.34 * TiBps),
    ),
    scratchpad=ScratchpadSpec(name="SharedMem", size=64 * KiB, load_latency=22.0),
    memory=MemorySpec(
        size=8 * GiB,
        load_latency=420.0,
        read_bandwidth=0.115 * TiBps,
        write_bandwidth=0.105 * TiBps,
        memory_clock_hz=1.25e9,
        bus_width_bits=128,
    ),
    l1_carveout={
        "PreferL1": 48 * KiB,
        "PreferShared": 16 * KiB,
        "PreferEqual": 32 * KiB,
    },
)


RTX2080 = GPUSpec(
    name="RTX2080",
    vendor=Vendor.NVIDIA,
    microarchitecture="Turing",
    chip="TU102",
    compute_capability="7.5",
    core_clock_hz=1.545e9,
    compute=ComputeSpec(
        num_sms=68,
        cores_per_sm=64,
        warp_size=32,
        max_blocks_per_sm=16,
        max_threads_per_block=1024,
        max_threads_per_sm=1024,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=6,
    ),
    caches=(
        *_nv_l1_family(64 * KiB, 128, 32, lat_l1=32.0, lat_tex=35.0, lat_ro=33.0),
        *_nv_constant_pair(2 * KiB, 25.0, 64 * KiB, 90.0),
        _nv_l2(5632 * KiB, 1, 64, 32, 194.0, 1.75 * TiBps, 1.30 * TiBps),
    ),
    scratchpad=ScratchpadSpec(name="SharedMem", size=64 * KiB, load_latency=19.0),
    memory=MemorySpec(
        size=11 * GiB,
        load_latency=430.0,
        read_bandwidth=0.45 * TiBps,
        write_bandwidth=0.42 * TiBps,
        memory_clock_hz=1.75e9,
        bus_width_bits=352,
    ),
    l1_carveout={
        "PreferL1": 64 * KiB,
        "PreferShared": 32 * KiB,
        "PreferEqual": 48 * KiB,
    },
)


A100 = GPUSpec(
    name="A100",
    vendor=Vendor.NVIDIA,
    microarchitecture="Ampere",
    chip="GA100",
    compute_capability="8.0",
    core_clock_hz=1.41e9,
    compute=ComputeSpec(
        num_sms=108,
        cores_per_sm=64,
        warp_size=32,
        max_blocks_per_sm=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=7,
    ),
    caches=(
        *_nv_l1_family(184 * KiB, 128, 32, lat_l1=33.0, lat_tex=36.0, lat_ro=34.0),
        *_nv_constant_pair(2 * KiB, 24.0, 64 * KiB, 100.0),
        # Paper footnote 13: the API-reported 40 MB is two 20 MB segments.
        _nv_l2(20 * MiB, 2, 128, 32, 200.0, 2.90 * TiBps, 2.20 * TiBps),
    ),
    scratchpad=ScratchpadSpec(name="SharedMem", size=164 * KiB, load_latency=29.0),
    memory=MemorySpec(
        size=40 * GiB,
        load_latency=610.0,
        read_bandwidth=1.25 * TiBps,
        write_bandwidth=1.15 * TiBps,
        memory_clock_hz=1.215e9,
        bus_width_bits=5120,
    ),
    l1_carveout={
        "PreferL1": 184 * KiB,
        "PreferShared": 28 * KiB,
        "PreferEqual": 96 * KiB,
    },
    # MIG profile -> (compute slices of 7, memory slices of 8); Fig. 5 uses
    # 4g.20gb, whose 4/8 memory slices see the same 20 MB as one full-GPU
    # L2 segment.
    mig_profiles={
        "1g.5gb": (1, 1),
        "2g.10gb": (2, 2),
        "3g.20gb": (3, 4),
        "4g.20gb": (4, 4),
        "7g.40gb": (7, 8),
    },
    compute_throughput={
        "fp64": 9.7e12,
        "fp32": 19.5e12,
        "fp16": 78e12,
        "int32": 19.5e12,
        "tensor_tf32": 156e12,
        "tensor_fp16": 312e12,
    },
)


def _h100(name: str, mem_gib: int, mem_lat: float, read_bw: float, write_bw: float) -> GPUSpec:
    return GPUSpec(
        name=name,
        vendor=Vendor.NVIDIA,
        microarchitecture="Hopper",
        chip="GH100",
        compute_capability="9.0",
        core_clock_hz=1.98e9,
        compute=ComputeSpec(
            num_sms=132,
            cores_per_sm=128,
            warp_size=32,
            max_blocks_per_sm=32,
            max_threads_per_block=1024,
            max_threads_per_sm=2048,
            registers_per_block=65536,
            registers_per_sm=65536,
            num_clusters=8,
        ),
        caches=(
            # Paper Table III: MT4G measures the true PreferL1 capacity of
            # 238 KiB out of the 256 KB combined L1+shared block.
            *_nv_l1_family(
                238 * KiB, 128, 32, lat_l1=38.0, lat_tex=39.0, lat_ro=35.0,
                l1_read_bw=26.0 * TiBps, l1_write_bw=20.0 * TiBps,
            ),
            *_nv_constant_pair(2 * KiB, 21.0, 128 * KiB, 105.0),
            _nv_l2(25 * MiB, 2, 128, 32, 220.0, 4.40 * TiBps, 3.40 * TiBps),
        ),
        scratchpad=ScratchpadSpec(name="SharedMem", size=228 * KiB, load_latency=30.0),
        memory=MemorySpec(
            size=mem_gib * GiB,
            load_latency=mem_lat,
            read_bandwidth=read_bw,
            write_bandwidth=write_bw,
            memory_clock_hz=2.619e9,
            bus_width_bits=5120,
        ),
        l1_carveout={
            "PreferL1": 238 * KiB,
            "PreferShared": 28 * KiB,
            "PreferEqual": 128 * KiB,
        },
        mig_profiles={
            "1g.10gb": (1, 1),
            "2g.20gb": (2, 2),
            "3g.40gb": (3, 4),
            "4g.40gb": (4, 4),
            "7g.80gb": (7, 8),
        },
        # Section VII extension data (H100 SXM5 datasheet peaks).
        compute_throughput={
            "fp64": 34e12,
            "fp32": 67e12,
            "fp16": 134e12,
            "int32": 33e12,
            "tensor_tf32": 495e12,
            "tensor_fp16": 990e12,
        },
    )


H100_80 = _h100("H100-80", 80, 843.0, 2.50 * TiBps, 2.70 * TiBps)
H100_96 = _h100("H100-96", 96, 850.0, 2.60 * TiBps, 2.80 * TiBps)

NVIDIA_PRESETS = {
    spec.name: spec
    for spec in (P6000, V100, T1000, RTX2080, A100, H100_80, H100_96)
}
