"""AMD CDNA GPU presets for the three validation machines of paper Table II.

Values follow the paper's Table III (MI210), the AMD CDNA 2/3 whitepapers,
the ROCm GPU hardware-spec tables, and chipsandcheese latency measurements.

AMD-specific modelling notes:

* Physical CU ids: AMD dies ship with spare CUs fused off; the MI210
  exposes 104 active CUs with physical ids in 0..127 (paper footnote 15).
  ``physical_cu_ids`` records the active ids in logical order.
* ``sL1d`` is shared by a small group of *physically adjacent* CUs
  (paper Section IV-H: 2 or 3 depending on the model); the group of a CU is
  ``physical_id // cu_share_group``.  A CU whose group partners are fused
  off enjoys exclusive sL1d capacity — the optimization opportunity the
  paper highlights.
* L2 is one cache per XCD (paper Section IV-F.1); CDNA1/2 are single-die
  so ``segments == 1``, the MI300X has 8 XCDs.
* The MI300X preset carries :class:`~repro.gpuspec.spec.Quirk.VIRTUALIZED`
  — the paper ran it as a virtual function ("MI300X VF") where thread
  blocks cannot be pinned to CU ids, so the CU-sharing benchmark reports
  no result (Section V, item 1).
"""

from __future__ import annotations

from repro.gpuspec.spec import (
    CacheScope,
    CacheSpec,
    ComputeSpec,
    GPUSpec,
    MemorySpec,
    Quirk,
    ScratchpadSpec,
    Vendor,
)
from repro.units import GiB, KiB, MiB

TiBps = 1024.0**4
GiBps = 1024.0**3

#: Stream processors per CU on CDNA (the tool's internal lookup table).
CORES_PER_CU = {
    "CDNA": 64,
    "CDNA2": 64,
    "CDNA3": 64,
}


def _active_cu_ids(total: int, disabled_mod: tuple[int, ...], mod: int) -> tuple[int, ...]:
    """Physical ids of active CUs: all ids whose ``id % mod`` is enabled."""
    return tuple(i for i in range(total) if (i % mod) not in disabled_mod)


MI100 = GPUSpec(
    name="MI100",
    vendor=Vendor.AMD,
    microarchitecture="CDNA",
    chip="gfx908",
    compute_capability="gfx908",
    core_clock_hz=1.502e9,
    compute=ComputeSpec(
        num_sms=120,
        cores_per_sm=64,
        warp_size=64,
        max_blocks_per_sm=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2560,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=1,
        simds_per_sm=4,
        # 120 of 128 die CUs active: the last CU of each 16-CU group fused.
        physical_cu_ids=_active_cu_ids(128, (15,), 16),
    ),
    caches=(
        CacheSpec(
            name="vL1",
            size=16 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=4,
            load_latency=140.0,
            scope=CacheScope.SM,
        ),
        CacheSpec(
            name="sL1d",
            size=16 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=4,
            load_latency=60.0,
            scope=CacheScope.CU_GROUP,
            cu_share_group=3,  # CDNA1: three CUs share one sL1d
        ),
        CacheSpec(
            name="L2",
            size=8 * MiB,
            line_size=64,
            fetch_granularity=64,
            ways=16,
            load_latency=300.0,
            scope=CacheScope.GPU,
            segments=1,
            size_via_api=True,
            line_size_via_api=True,
            segments_via_api=True,
            bandwidth_measured=True,
            read_bandwidth=1.90 * TiBps,
            write_bandwidth=1.30 * TiBps,
        ),
    ),
    scratchpad=ScratchpadSpec(name="LDS", size=64 * KiB, load_latency=55.0),
    memory=MemorySpec(
        size=32 * GiB,
        load_latency=700.0,
        read_bandwidth=0.85 * TiBps,
        write_bandwidth=0.75 * TiBps,
        memory_clock_hz=1.2e9,
        bus_width_bits=4096,
    ),
)


MI210 = GPUSpec(
    name="MI210",
    vendor=Vendor.AMD,
    microarchitecture="CDNA2",
    chip="gfx90a",
    compute_capability="gfx90a",
    core_clock_hz=1.7e9,
    compute=ComputeSpec(
        num_sms=104,
        cores_per_sm=64,
        warp_size=64,
        max_blocks_per_sm=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=1,
        simds_per_sm=4,
        # Paper footnote 15: 104 CUs with physical ids 0..127 (die has 128);
        # the last three ids of each 16-CU group are fused off.  sL1d pairs
        # are (2k, 2k+1): CU 12 of each group keeps an exclusive sL1d since
        # its partner 13 is disabled.
        physical_cu_ids=_active_cu_ids(128, (13, 14, 15), 16),
    ),
    caches=(
        CacheSpec(
            name="vL1",
            size=16 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=4,
            load_latency=125.0,  # paper Table III: MT4G 125 (ref 145)
            scope=CacheScope.SM,
            # Section VII low-level-bandwidth extension figures.
            read_bandwidth=11.0 * TiBps,
            write_bandwidth=8.0 * TiBps,
        ),
        CacheSpec(
            name="sL1d",
            size=16 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=4,
            load_latency=50.0,  # paper Table III: MT4G 50 (ref 64)
            scope=CacheScope.CU_GROUP,
            cu_share_group=2,  # CDNA2: two CUs share one sL1d
        ),
        CacheSpec(
            name="L2",
            size=8 * MiB,
            line_size=128,  # via API (KFD), paper Table III
            fetch_granularity=64,  # MT4G-measured, Table III
            ways=16,
            load_latency=310.0,  # paper Table III: MT4G 310
            scope=CacheScope.GPU,
            segments=1,
            size_via_api=True,
            line_size_via_api=True,
            segments_via_api=True,
            bandwidth_measured=True,
            read_bandwidth=4.19 * TiBps,  # paper Table III achieved values
            write_bandwidth=2.40 * TiBps,
        ),
    ),
    scratchpad=ScratchpadSpec(name="LDS", size=64 * KiB, load_latency=55.0),
    memory=MemorySpec(
        size=64 * GiB,
        load_latency=748.0,  # paper Table III: MT4G 748
        read_bandwidth=1.00 * TiBps,  # paper Table III: 1.0/0.9 TiB/s
        write_bandwidth=0.90 * TiBps,
        memory_clock_hz=1.6e9,
        bus_width_bits=4096,
    ),
    # Section VII extension data (MI210 datasheet peaks; matrix cores).
    compute_throughput={
        "fp64": 22.6e12,
        "fp32": 22.6e12,
        "fp16": 181e12,
        "tensor_fp16": 181e12,
        "tensor_fp64": 45.3e12,
    },
)


MI300X = GPUSpec(
    name="MI300X",
    vendor=Vendor.AMD,
    microarchitecture="CDNA3",
    chip="gfx942",
    compute_capability="gfx942",
    core_clock_hz=2.1e9,
    compute=ComputeSpec(
        num_sms=304,
        cores_per_sm=64,
        warp_size=64,
        max_blocks_per_sm=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        registers_per_block=65536,
        registers_per_sm=65536,
        num_clusters=8,  # 8 XCDs -> 8 L2 caches (paper Section IV-F.1)
        simds_per_sm=4,
        # 38 of 40 CUs active per XCD (304 of 320).
        physical_cu_ids=_active_cu_ids(320, (38, 39), 40),
    ),
    caches=(
        CacheSpec(
            name="vL1",
            size=32 * KiB,  # CDNA3 doubled vL1
            line_size=128,
            fetch_granularity=64,
            ways=4,
            load_latency=115.0,
            scope=CacheScope.SM,
        ),
        CacheSpec(
            name="sL1d",
            size=16 * KiB,
            line_size=64,
            fetch_granularity=64,
            ways=4,
            load_latency=45.0,
            scope=CacheScope.CU_GROUP,
            cu_share_group=2,
        ),
        CacheSpec(
            name="L2",
            size=4 * MiB,  # per XCD; API reports 8 x 4 MiB
            line_size=128,
            fetch_granularity=64,
            ways=16,
            load_latency=280.0,
            scope=CacheScope.GPU,
            segments=8,
            size_via_api=True,
            line_size_via_api=True,
            segments_via_api=True,
            bandwidth_measured=True,
            read_bandwidth=8.00 * TiBps,
            write_bandwidth=6.00 * TiBps,
        ),
        # CDNA3 Infinity Cache.  MT4G cannot benchmark its load latency or
        # fetch granularity (paper Section III-C) — the latency below is
        # simulator ground truth the tool never sees.
        CacheSpec(
            name="L3",
            size=256 * MiB,
            line_size=128,
            fetch_granularity=64,
            ways=16,
            load_latency=480.0,
            scope=CacheScope.GPU,
            segments=1,
            size_via_api=True,
            line_size_via_api=True,
            segments_via_api=True,
            bandwidth_measured=True,
            read_bandwidth=5.00 * TiBps,
            write_bandwidth=3.50 * TiBps,
        ),
    ),
    scratchpad=ScratchpadSpec(name="LDS", size=64 * KiB, load_latency=50.0),
    memory=MemorySpec(
        size=192 * GiB,
        load_latency=900.0,
        read_bandwidth=3.30 * TiBps,
        write_bandwidth=3.00 * TiBps,
        memory_clock_hz=2.6e9,
        bus_width_bits=8192,
    ),
    quirks=frozenset({Quirk.VIRTUALIZED}),
    compute_throughput={
        "fp64": 81.7e12,
        "fp32": 163.4e12,
        "fp16": 653.7e12,
        "tensor_fp16": 1307.4e12,
        "tensor_fp64": 163.4e12,
    },
)


AMD_PRESETS = {spec.name: spec for spec in (MI100, MI210, MI300X)}
