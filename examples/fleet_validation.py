#!/usr/bin/env python3
"""Fleet discovery with cross-validation: many GPUs, one verdict matrix.

Discovers several presets concurrently (one worker process per device),
validates every report (plausibility checks, cross-checks against the
device's reference values, escalated re-measurements on failure) and
prints the cross-device comparison matrix — the multi-machine view of
the paper's Table II/III.

Usage::

    python examples/fleet_validation.py [preset ...]

Defaults to a four-device mixed-vendor fleet.
"""

import sys

from repro import available_presets
from repro.validate import discover_fleet

DEFAULT_FLEET = ("A100", "H100-80", "MI210", "MI300X")


def main() -> None:
    presets = tuple(sys.argv[1:]) or DEFAULT_FLEET
    known = available_presets(include_testing=True)
    unknown = [p for p in presets if p not in known]
    if unknown:
        raise SystemExit(f"unknown preset(s) {unknown}; try: {', '.join(known)}")

    result = discover_fleet(presets, seed=0, validate=True)
    print(result.to_markdown())

    # Per-preset validation detail: what was checked, what escalated.
    for entry in result.entries:
        if not entry.ok:
            print(f"{entry.preset}: discovery failed: {entry.error}")
            continue
        v = entry.report.validation
        summary = v.as_dict()["summary"]
        print(
            f"{entry.preset}: verdict={v.verdict}  "
            f"checks {summary['checks_passed']}p/{summary['checks_failed']}f"
            f"/{summary['checks_skipped']}s  "
            f"cross-checks {summary['cross_checks_passed']}p"
            f"/{summary['cross_checks_failed']}f  "
            f"escalations {summary['escalations']}"
        )
        for esc in v.escalations:
            print(
                f"  escalated {esc.element}.{esc.attribute}: "
                f"{esc.old_value} -> {esc.new_value} ({esc.reason})"
            )

    if not result.all_passed:
        raise SystemExit("fleet validation failed")
    print("\nall presets validated clean")


if __name__ == "__main__":
    main()
