#!/usr/bin/env python3
"""GPUscout-style bottleneck analysis with MT4G context (paper Section VI-B).

GPUscout detects memory bottlenecks from profiler counters; its GUI joins
them with MT4G's topology so the recommendations become quantitative.
This example analyses two synthetic kernel profiles on the H100 and
prints the Fig. 4-style memory graph plus the recommendations.
"""

from repro import MT4G, SimulatedGPU
from repro.integrations.gpuscout import GPUscoutContext, NCUCounters
from repro.units import KiB, MiB, format_size

PROFILES = [
    NCUCounters(
        kernel_name="stencil_27pt",
        l1_hit_rate=0.55,
        l2_hit_rate=0.45,
        l1_bytes=2_800 * MiB,
        l2_bytes=1_300 * MiB,
        dram_bytes=720 * MiB,
        registers_per_thread=128,
        threads_per_block=256,
        blocks_per_sm=3,
        shared_bytes_per_block=32 * KiB,
        local_spill_bytes=4096,
        working_set_per_block=128 * KiB,
    ),
    NCUCounters(
        kernel_name="reduction_tree",
        l1_hit_rate=0.95,
        l2_hit_rate=0.90,
        l1_bytes=400 * MiB,
        l2_bytes=20 * MiB,
        dram_bytes=2 * MiB,
        registers_per_thread=24,
        threads_per_block=256,
        blocks_per_sm=4,
        shared_bytes_per_block=8 * KiB,
        working_set_per_block=24 * KiB,
    ),
]


def main() -> None:
    print("discovering H100-80 ...")
    report = MT4G(SimulatedGPU.from_preset("H100-80", seed=42)).discover()

    for counters in PROFILES:
        ctx = GPUscoutContext(report, counters)
        graph = ctx.memory_graph()
        print(f"\n=== kernel: {counters.kernel_name} ===")
        print("memory graph (sizes from MT4G, dynamics from NCU):")
        for node, data in graph.nodes(data=True):
            annot = []
            if data.get("size"):
                annot.append(f"size {format_size(data['size'])}")
            if data.get("hit_rate") is not None:
                annot.append(f"hit {data['hit_rate']:.0%}")
            if data.get("amount"):
                annot.append(f"x{data['amount']}")
            print(f"  {node:14s} {', '.join(annot)}")
        for u, v, data in graph.edges(data=True):
            print(f"    {u} -> {v}: {format_size(data['bytes'])}")
        print("recommendations:")
        for rec in ctx.recommendations():
            print(f"  [{rec.severity:8s}] {rec.code}")
            print(f"             {rec.message}")


if __name__ == "__main__":
    main()
