#!/usr/bin/env python3
"""Dynamic resource partitioning with sys-sage + MT4G (paper Section VI-C).

Reproduces the paper's Fig. 5 experiment: a one-core streaming read over
growing arrays on an A100, under the full GPU and three MIG instances.
sys-sage combines MT4G's static topology (L2 size *and* segment count)
with dynamic nvml MIG queries to predict where the throughput cliff sits
for each configuration — including the non-obvious fact that the full
GPU and the 4g.20gb instance behave identically.
"""

import numpy as np

from repro import MT4G, SimulatedGPU
from repro.integrations.syssage import SysSageTopology
from repro.units import MiB, format_size

PROFILES = ["full", "4g.20gb", "2g.10gb", "1g.5gb"]


def main() -> None:
    print("discovering A100 (the slow part: ~35 microbenchmarks) ...")
    device = SimulatedGPU.from_preset("A100", seed=42)
    report = MT4G(device).discover()
    ss = SysSageTopology(report, device)

    working_sets = np.geomspace(1 * MiB, 128 * MiB, 32)
    print(f"\n{'array size':>12s}" + "".join(f"{p:>12s}" for p in PROFILES)
          + "   (ns/B, lower is better)")
    curves = {}
    for profile in PROFILES:
        ss.set_mig_profile(None if profile == "full" else profile)
        curves[profile] = ss.stream_experiment(working_sets, noisy=False)
    for i in range(0, working_sets.size, 3):
        row = f"{format_size(working_sets[i]):>12s}"
        row += "".join(f"{curves[p][i]:12.4f}" for p in PROFILES)
        print(row)

    print("\nsys-sage-reported effective L2 per SM (static MT4G x dynamic MIG):")
    for profile in PROFILES:
        ss.set_mig_profile(None if profile == "full" else profile)
        state = ss.refresh()
        print(f"  {profile:9s}: {format_size(ss.effective_l2_per_sm()):>8s} "
              f"(instance sees {ss.visible_sms} SMs, "
              f"{format_size(ss.visible_dram_bytes)} DRAM)")

    print(
        "\nObservations (paper Fig. 5):\n"
        " 1. each curve's cliff sits at its reported L2 size — pick problem\n"
        "    sizes below it;\n"
        " 2. 'full' and '4g.20gb' coincide: one SM reaches only one of the\n"
        "    two 20 MB L2 segments, which only MT4G's Amount information\n"
        "    reveals (the API reports 40 MB)."
    )

    ss.set_mig_profile(None)
    print("\ncomponent tree (truncated):")
    tree = ss.tree(max_sms=2)
    for node, data in tree.nodes(data=True):
        print(f"  {data['kind']:13s} {node}")


if __name__ == "__main__":
    main()
