#!/usr/bin/env python3
"""Reliability study: how stable are MT4G's answers under noise?

The paper's core engineering claim is *reliable* auto-evaluation: the
K-S test and the outlier-widening loop separate real topology cliffs
from measurement disturbance.  This example stresses that claim:

1. repeats the vL1/sL1d size discovery across several noise seeds and
   reports the spread (discrete attributes must not flicker at all);
2. re-runs one discovery on a *non-exclusive* GPU (violating the paper's
   Section IV exclusivity assumption) via the contention noise mode and
   shows how the confidence degrades — the failure is visible, not
   silent.
"""

import numpy as np

from repro.core.benchmarks.base import BenchmarkContext
from repro.core.benchmarks.cacheline import measure_cache_line_size
from repro.core.benchmarks.size import measure_cache_size
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.units import KiB, format_size

SEEDS = [1, 7, 23, 42, 77, 1001]


def main() -> None:
    print("=== seed stability (MI210 vL1 + sL1d) ===")
    for name, kind in (("vL1", LoadKind.FLAT_LOAD), ("sL1d", LoadKind.S_LOAD)):
        sizes, lines = [], []
        for seed in SEEDS:
            ctx = BenchmarkContext(SimulatedGPU.from_preset("MI210", seed=seed))
            m = measure_cache_size(ctx, kind, name, 64, lo=1 * KiB, hi_cap=1024 * KiB)
            sizes.append(m.value)
            line = measure_cache_line_size(ctx, kind, name, m.value, 64)
            lines.append(line.value)
        spread = (max(sizes) - min(sizes)) / np.mean(sizes)
        print(f"{name:5s} size: {[format_size(s) for s in sizes]}")
        print(f"      spread {spread:.1%} of the mean "
              f"(truth 16 KiB); line sizes {sorted(set(lines))} (truth 64)")
        assert len(set(lines)) == 1, "discrete attribute flickered!"

    print("\n=== non-exclusive GPU (contention injection) ===")
    for contention in (0.0, 1.0, 4.0):
        ctx = BenchmarkContext(
            SimulatedGPU.from_preset("MI210", seed=42, contention=contention)
        )
        m = measure_cache_size(ctx, LoadKind.FLAT_LOAD, "vL1", 64,
                               lo=1 * KiB, hi_cap=1024 * KiB)
        verdict = format_size(m.value) if m.value else "no result"
        print(f"contention {contention:3.1f}: vL1 size -> {verdict:>10s} "
              f"(confidence {m.confidence:.3f})")
    print(
        "\nThe exclusivity assumption of Section IV matters: heavy "
        "co-tenant noise\nwidens the latency distributions until the "
        "K-S confidence drops — but the\ntool never silently reports a "
        "wrong size with high confidence."
    )


if __name__ == "__main__":
    main()
