#!/usr/bin/env python3
"""Vendor-agnostic topology comparison: NVIDIA H100 vs AMD MI210.

The paper's headline claim is a *unified* report across vendors.  This
example discovers both flagship devices and prints their memory
hierarchies side by side in one table — the kind of comparison no single
vendor API can produce (paper Sections I and III).

Roughly reproduces the information content of the paper's Table III.
"""

from repro import MT4G, SimulatedGPU
from repro.core.report import ATTRIBUTES

#: vendor-agnostic roles -> (NVIDIA element, AMD element)
ROLES = [
    ("first-level data cache", "L1", "vL1"),
    ("scalar/constant cache", "ConstL1", "sL1d"),
    ("last-level cache", "L2", "L2"),
    ("scratchpad", "SharedMem", "LDS"),
    ("device memory", "DeviceMemory", "DeviceMemory"),
]

SHOW = ["size", "load_latency", "read_bandwidth", "cache_line_size",
        "fetch_granularity", "amount"]


def main() -> None:
    print("discovering H100-80 (this runs ~35 microbenchmarks) ...")
    nv = MT4G(SimulatedGPU.from_preset("H100-80", seed=42)).discover()
    print("discovering MI210 (~15 microbenchmarks) ...")
    amd = MT4G(SimulatedGPU.from_preset("MI210", seed=42)).discover()

    print()
    print(f"{'role':26s} {'attribute':18s} {'H100-80 (NVIDIA)':>22s} {'MI210 (AMD)':>22s}")
    print("-" * 92)
    for role, nv_el, amd_el in ROLES:
        for attr in SHOW:
            left = nv.attribute(nv_el, attr).rendered()
            right = amd.attribute(amd_el, attr).rendered()
            if left == "n/a" and right == "n/a":
                continue
            label = role if attr == SHOW[0] else ""
            print(f"{label:26s} {attr:18s} {left:>22s} {right:>22s}")
        print("-" * 92)

    # Cross-vendor observations a user can only make with unified output:
    nv_l1 = nv.attribute("L1", "size").value
    amd_l1 = amd.attribute("vL1", "size").value
    print(f"\nNVIDIA's per-SM L1 is {nv_l1 / amd_l1:.0f}x the AMD per-CU vL1 "
          f"— but the MI210 has {amd.compute.num_sms} CUs vs {nv.compute.num_sms} SMs.")
    nv_lat = nv.attribute("L1", "load_latency").value
    amd_lat = amd.attribute("vL1", "load_latency").value
    print(f"vL1 load latency is {amd_lat / nv_lat:.1f}x the NVIDIA L1 latency "
          "(scalar sL1d narrows the gap for uniform loads).")


if __name__ == "__main__":
    main()
