#!/usr/bin/env python3
"""GPU performance modeling with MT4G parameters (paper Section VI-A).

Feeds MT4G-discovered hardware parameters (memory latency, bandwidth,
clock, SM counts) into the Hong & Kim CWP/MWP analytical model and
classifies three representative kernels as compute- or memory-bound —
against DRAM *and* against the L2, which is only possible because MT4G
provides the parameters across the whole hierarchy.
"""

from repro import MT4G, SimulatedGPU
from repro.integrations.perfmodel import ApplicationParams, GPUParams, HongKimModel

#: (name, profiler-style application parameters)
KERNELS = [
    (
        "saxpy (streaming)",
        ApplicationParams(
            comp_insts_per_warp=10,
            mem_insts_per_warp=12,
            active_warps_per_sm=48,
            load_bytes_per_warp=128,
        ),
    ),
    (
        "gemm tile (compute-heavy)",
        ApplicationParams(
            comp_insts_per_warp=2400,
            mem_insts_per_warp=24,
            active_warps_per_sm=32,
            load_bytes_per_warp=128,
        ),
    ),
    (
        "sparse gather (latency-bound)",
        ApplicationParams(
            comp_insts_per_warp=60,
            mem_insts_per_warp=40,
            active_warps_per_sm=8,
            load_bytes_per_warp=32,  # uncoalesced
        ),
    ),
]


def main() -> None:
    print("discovering H100-80 ...")
    report = MT4G(SimulatedGPU.from_preset("H100-80", seed=42)).discover()

    for level in ("DeviceMemory", "L2"):
        gpu = GPUParams.from_report(report, level)
        print(f"\n=== Hong-Kim model against {level} "
              f"(latency {gpu.mem_latency:.0f} cyc, "
              f"bandwidth {gpu.mem_bandwidth / 1024**4:.2f} TiB/s) ===")
        print(f"{'kernel':28s} {'CWP':>7s} {'MWP':>7s} {'MWP_lat':>8s} "
              f"{'MWP_bw':>8s} {'bound':>9s} {'cycles/SM':>12s}")
        for name, app in KERNELS:
            result = HongKimModel(app, gpu).evaluate()
            print(
                f"{name:28s} {result.cwp:7.1f} {result.mwp:7.1f} "
                f"{result.mwp_latency_bound:8.1f} {result.mwp_bandwidth_bound:8.1f} "
                f"{result.bottleneck:>9s} {result.execution_cycles:12.0f}"
            )

    print(
        "\nReading: CWP > MWP means warps pile up behind memory (memory-"
        "bound);\nagainst the L2 the same kernels show more headroom — if "
        "the working set\ncan be tiled into the 25 MiB segment MT4G "
        "measured, the bottleneck moves."
    )


if __name__ == "__main__":
    main()
