#!/usr/bin/env python3
"""Quickstart: discover a GPU's topology in three lines.

Runs the full MT4G pipeline against the simulated AMD MI210 (one of the
paper's Table II machines — and the fast one: AMD needs ~15 benchmarks
against NVIDIA's ~35) and prints the human-readable report.

Usage::

    python examples/quickstart.py [preset-name]
"""

import sys

from repro import MT4G, SimulatedGPU, available_presets
from repro.core.output.markdown import to_markdown


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "MI210"
    if preset not in available_presets(include_testing=True):
        raise SystemExit(
            f"unknown preset {preset!r}; try one of: "
            + ", ".join(available_presets(include_testing=True))
        )

    device = SimulatedGPU.from_preset(preset, seed=42)
    report = MT4G(device).discover()
    print(to_markdown(report))

    # Programmatic access: every attribute carries value + provenance.
    l1 = "L1" if report.general.vendor == "NVIDIA" else "vL1"
    size = report.attribute(l1, "size")
    latency = report.attribute(l1, "load_latency")
    print(f"{l1} size     : {size.rendered()}  (source: {size.source.value}, "
          f"confidence {size.confidence:.2f})")
    print(f"{l1} latency  : {latency.rendered()}")
    print(f"benchmarks run: {report.runtime.benchmarks_executed}")


if __name__ == "__main__":
    main()
