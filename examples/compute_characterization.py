#!/usr/bin/env python3
"""Compute-capability characterisation (paper Section VII extensions).

The paper's future-work list includes FLOPS metrics "for INT and FP
datatypes of different precisions", tensor-engine characterisation and
low-level-cache bandwidth.  This example runs all of them on the H100
and MI210 and derives the kind of cross-datatype insight the extension
is meant to enable: arithmetic-intensity break-even points (the Roofline
model's ridge) per datatype, computed purely from MT4G-discovered
numbers.
"""

from repro import MT4G, SimulatedGPU
from repro.units import format_bandwidth


def characterize(preset: str) -> None:
    print(f"\n=== {preset} ===")
    device = SimulatedGPU.from_preset(preset, seed=42)
    nvidia = device.vendor.value == "NVIDIA"
    targets = (
        {"L1", "L2", "SharedMem", "DeviceMemory"}
        if nvidia
        else {"vL1", "L2", "LDS", "DeviceMemory"}
    )
    report = MT4G(
        device, targets=targets, extensions={"flops", "lowlevel_bandwidth"}
    ).discover()

    dram_bw = report.attribute("DeviceMemory", "read_bandwidth").value
    print(f"{'datatype':12s} {'achieved':>14s} {'ridge (op/B)':>14s}   engine")
    for dtype, av in sorted(report.throughput.items()):
        ridge = av.value / dram_bw  # Roofline: FLOPS / bandwidth
        engine = "tensor" if dtype.startswith("tensor_") else "vector"
        print(f"{dtype:12s} {av.value / 1e12:11.1f} T/s {ridge:14.1f}   {engine}")

    l1 = "L1" if nvidia else "vL1"
    l1_bw = report.attribute(l1, "read_bandwidth")
    l2_bw = report.attribute("L2", "read_bandwidth")
    if l1_bw.value:
        print(
            f"\nbandwidth ladder: {l1} {format_bandwidth(l1_bw.value)} -> "
            f"L2 {format_bandwidth(l2_bw.value)} -> "
            f"DRAM {format_bandwidth(dram_bw)}"
        )
        print(
            f"({l1}/L2 ratio {l1_bw.value / l2_bw.value:.1f}x, "
            f"L2/DRAM ratio {l2_bw.value / dram_bw:.1f}x — every tiling level "
            "pays off)"
        )
    else:
        print(f"\n{l1} bandwidth: {l1_bw.note or 'not available on this device'}")


def main() -> None:
    for preset in ("H100-80", "MI210"):
        characterize(preset)
    print(
        "\nReading: a kernel needs 'ridge' arithmetic ops per DRAM byte to "
        "escape the\nmemory roof on each engine — tensor engines demand far "
        "more intensity, which\nis why they only pay off on blocked matrix "
        "workloads."
    )


if __name__ == "__main__":
    main()
